//===- icode/ICode.h - IR-building dynamic back end ------------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ICODE abstract machine (paper §5.2). ICODE presents an interface
/// similar to VCODE with two extensions: (1) an infinite number of virtual
/// registers, and (2) primitives to express changes in estimated usage
/// frequency (loop-nesting hints), so the allocator gets use estimates
/// without expensive analysis.
///
/// Functionally, ICODE differs from VCODE in that it builds a compact
/// intermediate representation at run time instead of emitting machine code
/// immediately. After the client lays down the last instruction, compileTo()
/// builds a flow graph, computes live variables by iteration, derives
/// coarse *live intervals*, allocates registers (linear scan, Figure 3 of
/// the paper — its original publication — or a Chaitin-style graph-coloring
/// baseline), runs a peephole pass, and translates the IR to binary through
/// the VCODE layer.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_ICODE_ICODE_H
#define TICKC_ICODE_ICODE_H

#include "support/Arena.h"
#include "vcode/VCode.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace tcc {
namespace icode {

using vcode::CmpKind;

/// Virtual register id. ICODE clients "emit code that assumes no spills".
using VReg = std::int32_t;

/// Branch-target handle within an ICODE buffer.
struct ILabel {
  std::int32_t Id = -1;
  bool valid() const { return Id >= 0; }
};

/// ICODE opcodes. The paper's instruction set is the cross product of
/// operation kinds and operand types; we fold the type into the mnemonic
/// (I = int32, L = int64/pointer, D = double) exactly like the VCODE layer.
enum class Op : std::uint8_t {
  // Constants and moves. Wide payloads live in the constant pool.
  SetI,
  SetL,
  SetD,
  MovI,
  MovD,
  // Three-address integer arithmetic.
  AddI,
  SubI,
  MulI,
  DivI,
  ModI,
  DivUI,
  ModUI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,
  UShrI,
  // Reg-immediate integer arithmetic.
  AddII,
  SubII,
  MulII,
  DivII,
  ModII,
  AndII,
  OrII,
  XorII,
  ShlII,
  ShrII,
  UShrII,
  // Unary.
  NegI,
  NotI,
  // 64-bit / pointer.
  AddL,
  SubL,
  MulL,
  AddLI,
  MulLI,
  ShlLI,
  SextIToL,
  // Double arithmetic and conversions.
  AddD,
  SubD,
  MulD,
  DivD,
  NegD,
  CvtIToD,
  CvtLToD,
  CvtDToI,
  // Comparisons producing 0/1 (Sub = CmpKind).
  CmpSetI,
  CmpSetII,
  CmpSetL,
  CmpSetD,
  // Memory.
  LdI,
  LdL,
  LdI8s,
  LdI8u,
  LdI16s,
  LdI16u,
  LdD,
  StI,
  StL,
  StI8,
  StI16,
  StD,
  // Control flow.
  Label,
  Jump,
  BrCmpI,
  BrCmpII,
  BrCmpL,
  BrCmpD,
  BrTrue,
  BrFalse,
  // Function boundary.
  BindArgI,
  BindArgD,
  RetI,
  RetL,
  RetD,
  RetVoid,
  // Calls.
  CallArgI,
  CallArgP,
  CallArgII,
  CallArgD,
  Call,
  CallIndirect,
  ResultI,
  ResultL,
  ResultD,
  // Usage-frequency hint: A = +1 entering a loop, -1 leaving it.
  Hint,
  // Profiling hook: atomic increment of the invocation counter whose
  // address sits in the constant pool (A). Impure — never erased.
  ProfileInc,
  // SetL whose pool payload (B) is a captured external address rather
  // than plain data. Identical machine code; the distinction lets the
  // emitter record a relocation so the persistent cache can re-point it.
  SetP,
  // Erased by the peephole pass; never emitted.
  Nop,
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Op::Nop) + 1;

/// Human-readable opcode mnemonic (diagnostics and the emitter-usage report).
const char *opName(Op O);

/// One ICODE instruction. The paper packs these into two 4-byte words; on a
/// 64-bit host we use a 16-byte POD with the same design goals: compact and
/// trivially parseable so later passes stay cheap.
struct Instr {
  Op Opcode;
  std::uint8_t Sub; ///< CmpKind for compare/branch forms, else 0.
  std::int32_t A = 0, B = 0, C = 0;
};

static_assert(sizeof(Instr) == 16, "ICODE instruction should stay compact");

struct Allocation; // Analysis.h

/// Optional checkpoints compileTo() exposes to the verification subsystem
/// (src/verify). Plain function pointers so icode does not depend on verify;
/// the core compile driver wires them up when verification is on. Both hooks
/// observe, never mutate.
struct CompileAudit {
  void *Ctx = nullptr;
  /// After dead-code elimination, before flow-graph construction.
  void (*PostPeephole)(void *Ctx, const class ICode &IC) = nullptr;
  /// After register allocation, before machine-code emission.
  void (*PostRegAlloc)(void *Ctx, const class ICode &IC,
                       const Allocation &Alloc) = nullptr;
};

/// Which register allocator compileTo() uses.
enum class RegAllocKind {
  LinearScan, ///< One scan over live intervals (paper Figure 3).
  GraphColor, ///< Chaitin-style coloring baseline (paper §5.2).
};

/// How the allocator picks a spill victim.
enum class SpillHeuristic {
  LongestInterval, ///< The paper's choice: evict the earliest-starting.
  LowestWeight,    ///< Ablation: evict the least-used (loop-depth hints).
};

/// Per-phase cost breakdown of one dynamic compilation, in TSC cycles —
/// the raw material of the paper's Figure 7.
struct CompileStats {
  std::uint64_t CyclesFlowGraph = 0;
  std::uint64_t CyclesLiveness = 0;
  std::uint64_t CyclesIntervals = 0;
  std::uint64_t CyclesRegAlloc = 0;
  std::uint64_t CyclesPeephole = 0;
  std::uint64_t CyclesEmit = 0;
  unsigned NumIRInstrs = 0;
  unsigned NumMachineInstrs = 0;
  unsigned NumBasicBlocks = 0;
  unsigned NumIntervals = 0;
  unsigned NumSpilledIntervals = 0;
  unsigned NumLivenessIterations = 0;
};

/// Records which ICODE opcodes a program actually uses. Reproduces the
/// measurable effect of tcc's link-time analysis: the generated
/// ICODE-to-binary translator contains only the required instructions,
/// cutting the emitter size "by up to an order of magnitude" (paper §5.2).
class EmitterUsage {
public:
  /// Relaxed: the registry is a global written by every concurrent ICODE
  /// compile; a monotonic flag needs no ordering (and the store costs the
  /// same as a plain one on x86).
  void noteUse(Op O) {
    Used[static_cast<unsigned>(O)].store(true, std::memory_order_relaxed);
  }
  unsigned usedOpcodes() const;
  static unsigned totalOpcodes() { return NumOpcodes; }
  /// Estimated handler footprint: the paper reports ~100 instructions of
  /// translate/peephole code per ICODE instruction kind.
  static constexpr unsigned InstrsPerHandler = 100;
  unsigned retainedHandlerInstrs() const {
    return usedOpcodes() * InstrsPerHandler;
  }
  static unsigned fullHandlerInstrs() {
    return totalOpcodes() * InstrsPerHandler;
  }
  bool isUsed(Op O) const {
    return Used[static_cast<unsigned>(O)].load(std::memory_order_relaxed);
  }

  /// Clears every flag (bench isolation between measured programs).
  void reset() {
    for (auto &U : Used)
      U.store(false, std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Used[NumOpcodes] = {};
};

/// ICODE instruction buffer and builder. The mutator interface mirrors
/// vcode::VCode, but every operation appends to the IR instead of emitting.
class ICode {
public:
  /// Owns a private arena — convenient for tests and ad-hoc use.
  ICode();
  /// Builds the IR (and every later analysis structure) in \p A — the
  /// steady-state compile path, where \p A is a pooled CompileContext's
  /// arena that is reset (retaining its slab) between compiles.
  explicit ICode(Arena &A);

  /// The arena all pipeline phases allocate from. Exposed const: analysis
  /// scratch in the arena never changes the IR's logical state.
  Arena &arena() const { return *A; }

  // --- Virtual registers ----------------------------------------------------
  VReg newIntReg();
  VReg newFloatReg();
  bool isFloatReg(VReg R) const { return RegIsFloat[R] != 0; }
  unsigned numRegs() const { return static_cast<unsigned>(RegIsFloat.size()); }

  // --- Usage-frequency hints -------------------------------------------------
  /// Marks entry into (Delta=+1) or exit from (Delta=-1) a more frequently
  /// executed region. Nested loops compose.
  void hint(int Delta) { append(Op::Hint, 0, Delta, 0, 0); }

  // --- Profiling hook --------------------------------------------------------
  /// Plants the opt-in profiling hook (observability/Profile.h): the emitted
  /// prologue atomically increments the 64-bit counter at \p Counter, which
  /// must outlive the generated code. Uses no virtual registers, so every
  /// later pass treats it as opaque straight-line code.
  void profileEntry(const void *Counter) {
    append(Op::ProfileInc, 0,
           addPool(reinterpret_cast<std::uintptr_t>(Counter)), 0, 0);
  }

  // --- Constants and moves -----------------------------------------------------
  void setI(VReg D, std::int32_t Imm) { append(Op::SetI, 0, D, Imm, 0); }
  void setL(VReg D, std::int64_t Imm) {
    append(Op::SetL, 0, D, addPool(static_cast<std::uint64_t>(Imm)), 0);
  }
  void setP(VReg D, const void *P) {
    append(Op::SetP, 0, D, addPool(reinterpret_cast<std::uintptr_t>(P)), 0);
  }
  void setD(VReg D, double Imm);
  void movI(VReg D, VReg S) { append(Op::MovI, 0, D, S, 0); }
  void movL(VReg D, VReg S) { movI(D, S); } ///< Registers are 64-bit wide.
  void movD(VReg D, VReg S) { append(Op::MovD, 0, D, S, 0); }

  // --- Arithmetic ----------------------------------------------------------------
  void addI(VReg D, VReg A, VReg B) { append(Op::AddI, 0, D, A, B); }
  void subI(VReg D, VReg A, VReg B) { append(Op::SubI, 0, D, A, B); }
  void mulI(VReg D, VReg A, VReg B) { append(Op::MulI, 0, D, A, B); }
  void divI(VReg D, VReg A, VReg B) { append(Op::DivI, 0, D, A, B); }
  void modI(VReg D, VReg A, VReg B) { append(Op::ModI, 0, D, A, B); }
  void divUI(VReg D, VReg A, VReg B) { append(Op::DivUI, 0, D, A, B); }
  void modUI(VReg D, VReg A, VReg B) { append(Op::ModUI, 0, D, A, B); }
  void andI(VReg D, VReg A, VReg B) { append(Op::AndI, 0, D, A, B); }
  void orI(VReg D, VReg A, VReg B) { append(Op::OrI, 0, D, A, B); }
  void xorI(VReg D, VReg A, VReg B) { append(Op::XorI, 0, D, A, B); }
  void shlI(VReg D, VReg A, VReg B) { append(Op::ShlI, 0, D, A, B); }
  void shrI(VReg D, VReg A, VReg B) { append(Op::ShrI, 0, D, A, B); }
  void ushrI(VReg D, VReg A, VReg B) { append(Op::UShrI, 0, D, A, B); }
  void negI(VReg D, VReg A) { append(Op::NegI, 0, D, A, 0); }
  void notI(VReg D, VReg A) { append(Op::NotI, 0, D, A, 0); }

  void addII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::AddII, 0, D, A, Imm);
  }
  void subII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::SubII, 0, D, A, Imm);
  }
  void mulII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::MulII, 0, D, A, Imm);
  }
  void divII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::DivII, 0, D, A, Imm);
  }
  void modII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::ModII, 0, D, A, Imm);
  }
  void andII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::AndII, 0, D, A, Imm);
  }
  void orII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::OrII, 0, D, A, Imm);
  }
  void xorII(VReg D, VReg A, std::int32_t Imm) {
    append(Op::XorII, 0, D, A, Imm);
  }
  void shlII(VReg D, VReg A, std::uint8_t Imm) {
    append(Op::ShlII, 0, D, A, Imm);
  }
  void shrII(VReg D, VReg A, std::uint8_t Imm) {
    append(Op::ShrII, 0, D, A, Imm);
  }
  void ushrII(VReg D, VReg A, std::uint8_t Imm) {
    append(Op::UShrII, 0, D, A, Imm);
  }

  void addL(VReg D, VReg A, VReg B) { append(Op::AddL, 0, D, A, B); }
  void subL(VReg D, VReg A, VReg B) { append(Op::SubL, 0, D, A, B); }
  void mulL(VReg D, VReg A, VReg B) { append(Op::MulL, 0, D, A, B); }
  void addLI(VReg D, VReg A, std::int32_t Imm) {
    append(Op::AddLI, 0, D, A, Imm);
  }
  void mulLI(VReg D, VReg A, std::int32_t Imm) {
    append(Op::MulLI, 0, D, A, Imm);
  }
  void shlLI(VReg D, VReg A, std::uint8_t Imm) {
    append(Op::ShlLI, 0, D, A, Imm);
  }
  void sextIToL(VReg D, VReg A) { append(Op::SextIToL, 0, D, A, 0); }

  void addD(VReg D, VReg A, VReg B) { append(Op::AddD, 0, D, A, B); }
  void subD(VReg D, VReg A, VReg B) { append(Op::SubD, 0, D, A, B); }
  void mulD(VReg D, VReg A, VReg B) { append(Op::MulD, 0, D, A, B); }
  void divD(VReg D, VReg A, VReg B) { append(Op::DivD, 0, D, A, B); }
  void negD(VReg D, VReg A) { append(Op::NegD, 0, D, A, 0); }
  void cvtIToD(VReg D, VReg A) { append(Op::CvtIToD, 0, D, A, 0); }
  void cvtLToD(VReg D, VReg A) { append(Op::CvtLToD, 0, D, A, 0); }
  void cvtDToI(VReg D, VReg A) { append(Op::CvtDToI, 0, D, A, 0); }

  void cmpSetI(CmpKind K, VReg D, VReg A, VReg B) {
    append(Op::CmpSetI, static_cast<std::uint8_t>(K), D, A, B);
  }
  void cmpSetII(CmpKind K, VReg D, VReg A, std::int32_t Imm) {
    append(Op::CmpSetII, static_cast<std::uint8_t>(K), D, A, Imm);
  }
  void cmpSetL(CmpKind K, VReg D, VReg A, VReg B) {
    append(Op::CmpSetL, static_cast<std::uint8_t>(K), D, A, B);
  }
  void cmpSetD(CmpKind K, VReg D, VReg A, VReg B) {
    append(Op::CmpSetD, static_cast<std::uint8_t>(K), D, A, B);
  }

  // --- Memory -----------------------------------------------------------------------
  void ldI(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdI, 0, D, Base, Off);
  }
  void ldL(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdL, 0, D, Base, Off);
  }
  void ldI8s(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdI8s, 0, D, Base, Off);
  }
  void ldI8u(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdI8u, 0, D, Base, Off);
  }
  void ldI16s(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdI16s, 0, D, Base, Off);
  }
  void ldI16u(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdI16u, 0, D, Base, Off);
  }
  void ldD(VReg D, VReg Base, std::int32_t Off) {
    append(Op::LdD, 0, D, Base, Off);
  }
  void stI(VReg Base, std::int32_t Off, VReg S) {
    append(Op::StI, 0, Base, S, Off);
  }
  void stL(VReg Base, std::int32_t Off, VReg S) {
    append(Op::StL, 0, Base, S, Off);
  }
  void stI8(VReg Base, std::int32_t Off, VReg S) {
    append(Op::StI8, 0, Base, S, Off);
  }
  void stI16(VReg Base, std::int32_t Off, VReg S) {
    append(Op::StI16, 0, Base, S, Off);
  }
  void stD(VReg Base, std::int32_t Off, VReg S) {
    append(Op::StD, 0, Base, S, Off);
  }

  // --- Control flow ------------------------------------------------------------------
  ILabel newLabel();
  void bindLabel(ILabel L);
  void jump(ILabel L) { append(Op::Jump, 0, L.Id, 0, 0); }
  void brCmpI(CmpKind K, VReg A, VReg B, ILabel L) {
    append(Op::BrCmpI, static_cast<std::uint8_t>(K), A, B, L.Id);
  }
  void brCmpII(CmpKind K, VReg A, std::int32_t Imm, ILabel L) {
    append(Op::BrCmpII, static_cast<std::uint8_t>(K), A, Imm, L.Id);
  }
  void brCmpL(CmpKind K, VReg A, VReg B, ILabel L) {
    append(Op::BrCmpL, static_cast<std::uint8_t>(K), A, B, L.Id);
  }
  void brCmpD(CmpKind K, VReg A, VReg B, ILabel L) {
    append(Op::BrCmpD, static_cast<std::uint8_t>(K), A, B, L.Id);
  }
  void brTrueI(VReg A, ILabel L) { append(Op::BrTrue, 0, A, L.Id, 0); }
  void brFalseI(VReg A, ILabel L) { append(Op::BrFalse, 0, A, L.Id, 0); }

  // --- Function boundary ----------------------------------------------------------------
  void bindArgI(unsigned Index, VReg D) {
    append(Op::BindArgI, 0, D, static_cast<std::int32_t>(Index), 0);
  }
  void bindArgD(unsigned Index, VReg D) {
    append(Op::BindArgD, 0, D, static_cast<std::int32_t>(Index), 0);
  }
  void retI(VReg A) { append(Op::RetI, 0, A, 0, 0); }
  void retL(VReg A) { append(Op::RetL, 0, A, 0, 0); }
  void retD(VReg A) { append(Op::RetD, 0, A, 0, 0); }
  void retVoid() { append(Op::RetVoid, 0, 0, 0, 0); }

  // --- Calls --------------------------------------------------------------------------------
  void prepareCallArgI(unsigned Slot, VReg S) {
    append(Op::CallArgI, 0, static_cast<std::int32_t>(Slot), S, 0);
  }
  void prepareCallArgP(unsigned Slot, const void *P) {
    append(Op::CallArgP, 0, static_cast<std::int32_t>(Slot),
           addPool(reinterpret_cast<std::uintptr_t>(P)), 0);
  }
  void prepareCallArgII(unsigned Slot, std::int64_t Imm) {
    append(Op::CallArgII, 0, static_cast<std::int32_t>(Slot),
           addPool(static_cast<std::uint64_t>(Imm)), 0);
  }
  void prepareCallArgD(unsigned FpSlot, VReg S) {
    append(Op::CallArgD, 0, static_cast<std::int32_t>(FpSlot), S, 0);
  }
  void emitCall(const void *Fn, unsigned NumFpArgs = 0) {
    append(Op::Call, 0, addPool(reinterpret_cast<std::uintptr_t>(Fn)),
           static_cast<std::int32_t>(NumFpArgs), 0);
  }
  void emitCallIndirect(VReg S, unsigned NumFpArgs = 0) {
    append(Op::CallIndirect, 0, S, static_cast<std::int32_t>(NumFpArgs), 0);
  }
  void resultToI(VReg D) { append(Op::ResultI, 0, D, 0, 0); }
  void resultToL(VReg D) { append(Op::ResultL, 0, D, 0, 0); }
  void resultToD(VReg D) { append(Op::ResultD, 0, D, 0, 0); }

  // --- Compilation -----------------------------------------------------------------------------
  /// Runs the full ICODE pipeline into \p V (which must be freshly
  /// constructed): flow graph, liveness, intervals, register allocation,
  /// peephole, emission. Returns the entry point (V.finish()).
  void *compileTo(vcode::VCode &V, RegAllocKind Kind,
                  CompileStats *Stats = nullptr,
                  SpillHeuristic Spill = SpillHeuristic::LongestInterval,
                  const CompileAudit *Audit = nullptr);

  // --- Introspection ------------------------------------------------------------------------------
  const ArenaVector<Instr> &instrs() const { return Instrs; }
  std::uint64_t poolValue(std::int32_t Idx) const {
    return Pool[static_cast<std::size_t>(Idx)];
  }
  unsigned poolSize() const { return static_cast<unsigned>(Pool.size()); }
  unsigned numLabels() const { return NumLabels; }
  /// Instruction index a label was bound at (or -1).
  std::int32_t labelTarget(std::int32_t LabelId) const {
    return LabelTargets[static_cast<std::size_t>(LabelId)];
  }
  /// Extracts defined and used vregs of an instruction. Returns counts via
  /// the out-parameters; buffers must hold at least 1 (defs) / 2 (uses).
  static void defsUses(const Instr &I, VReg *Defs, unsigned &NumDefs,
                       VReg *Uses, unsigned &NumUses);
  /// Shared opcode-usage registry (reset explicitly in benchmarks).
  static EmitterUsage &emitterUsage();

  /// Deep copy into a fresh privately-owned arena. For callers (ablation
  /// benches) that re-run the mutating pipeline over one IR; the hot
  /// compile path never copies.
  ICode clone() const;

private:
  void append(Op O, std::uint8_t Sub, std::int32_t A, std::int32_t B,
              std::int32_t C) {
    Instrs.push_back(Instr{O, Sub, A, B, C});
  }
  std::int32_t addPool(std::uint64_t V) {
    Pool.push_back(V);
    return static_cast<std::int32_t>(Pool.size() - 1);
  }

  /// Private arena for the ownerless constructor; null when building into a
  /// caller-provided (pooled) arena.
  std::unique_ptr<Arena> Owned;
  Arena *A;
  ArenaVector<Instr> Instrs;
  ArenaVector<std::uint64_t> Pool;
  ArenaVector<std::uint8_t> RegIsFloat;
  ArenaVector<std::int32_t> LabelTargets;
  unsigned NumLabels = 0;
};

} // namespace icode
} // namespace tcc

#endif // TICKC_ICODE_ICODE_H
