//===- icode/FlowGraph.cpp - One-pass CFG construction + liveness ---------==//
//
// Paper §5.2: "ICODE builds a flow graph in one pass after all CGFs have
// been invoked ... The flow graph is a single array ... ICODE computes an
// upper bound on the number of basic blocks by summing the numbers of labels
// and jumps." Liveness uses "a traditional relaxation algorithm for
// computing exact live variable information."
//
// The four dataflow sets of every block are carved out of one zeroed arena
// allocation, [block][Def | Use | LiveIn | LiveOut][word], and the
// relaxation operates on whole uint64_t words: per pass each block costs a
// handful of OR/AND-NOT word operations instead of per-bit container
// traffic. On the pooled compile path the backing arena is reset between
// compiles, so steady-state liveness performs no heap allocation at all.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <cassert>

using namespace tcc;
using namespace tcc::icode;

/// True if the instruction ends a basic block.
static bool isTerminator(Op O) {
  switch (O) {
  case Op::Jump:
  case Op::BrCmpI:
  case Op::BrCmpII:
  case Op::BrCmpL:
  case Op::BrCmpD:
  case Op::BrTrue:
  case Op::BrFalse:
  case Op::RetI:
  case Op::RetL:
  case Op::RetD:
  case Op::RetVoid:
    return true;
  default:
    return false;
  }
}

/// Label id a branch targets, or -1.
static std::int32_t branchTarget(const Instr &I) {
  switch (I.Opcode) {
  case Op::Jump:
    return I.A;
  case Op::BrCmpI:
  case Op::BrCmpII:
  case Op::BrCmpL:
  case Op::BrCmpD:
    return I.C;
  case Op::BrTrue:
  case Op::BrFalse:
    return I.B;
  default:
    return -1;
  }
}

FlowGraph::FlowGraph() : Owned(new Arena()), A(Owned.get()), Blocks(*A) {}

FlowGraph::FlowGraph(Arena &BackingArena)
    : A(&BackingArena), Blocks(*A) {}

void FlowGraph::build(const ICode &IC) {
  const auto &Instrs = IC.instrs();
  const auto N = static_cast<std::int32_t>(Instrs.size());
  NumRegs = IC.numRegs();
  WordsPerSet = (NumRegs + 63) / 64;

  Blocks.clear();
  // Upper bound on block count: one per label plus one per terminator,
  // plus the entry block — reserve once, as the paper's single-array
  // allocation does.
  unsigned Bound = 1 + IC.numLabels();
  for (const Instr &I : Instrs)
    Bound += isTerminator(I.Opcode);
  Blocks.reserve(Bound);

  BlockOfInstr = A->allocateArray<std::int32_t>(static_cast<std::size_t>(N));
  for (std::int32_t I = 0; I < N; ++I)
    BlockOfInstr[I] = -1;

  // Pass 1: carve blocks. A block begins at index 0, at each Label, and
  // after each terminator.
  std::int32_t Idx = 0;
  while (Idx < N) {
    BasicBlock BB;
    BB.Begin = Idx;
    // A leading run of Label instructions belongs to this block.
    while (Idx < N && Instrs[Idx].Opcode == Op::Label)
      ++Idx;
    while (Idx < N && Instrs[Idx].Opcode != Op::Label &&
           !isTerminator(Instrs[Idx].Opcode))
      ++Idx;
    if (Idx < N && isTerminator(Instrs[Idx].Opcode))
      ++Idx; // Terminator closes the block.
    BB.End = Idx;
    Blocks.push_back(BB);
  }
  if (Blocks.empty()) {
    BasicBlock BB;
    Blocks.push_back(BB);
  }

  for (std::size_t B = 0; B < Blocks.size(); ++B)
    for (std::int32_t I = Blocks[B].Begin; I < Blocks[B].End; ++I)
      BlockOfInstr[static_cast<std::size_t>(I)] =
          static_cast<std::int32_t>(B);

  // Pass 2: successors. Fall-through plus branch target.
  for (std::size_t B = 0; B < Blocks.size(); ++B) {
    BasicBlock &BB = Blocks[B];
    if (BB.Begin == BB.End)
      continue;
    const Instr &Last = Instrs[static_cast<std::size_t>(BB.End - 1)];
    bool Falls = true;
    switch (Last.Opcode) {
    case Op::Jump:
    case Op::RetI:
    case Op::RetL:
    case Op::RetD:
    case Op::RetVoid:
      Falls = false;
      break;
    default:
      break;
    }
    unsigned NS = 0;
    if (Falls && B + 1 < Blocks.size())
      BB.Succ[NS++] = static_cast<std::int32_t>(B + 1);
    std::int32_t Target = branchTarget(Last);
    if (Target >= 0) {
      std::int32_t TargetInstr = IC.labelTarget(Target);
      assert(TargetInstr >= 0 && "branch to unbound label");
      std::int32_t TargetBlock = BlockOfInstr[TargetInstr];
      if (NS == 0 || BB.Succ[0] != TargetBlock)
        BB.Succ[NS++] = TargetBlock;
    }
  }

  // Pass 3: def/use sets ("a minimal amount of local data flow
  // information: def and use sets for each basic block"). All four sets of
  // all blocks share one zeroed allocation: [block][set][word].
  std::uint64_t *SetWords =
      A->allocateZeroed<std::uint64_t>(Blocks.size() * 4 * WordsPerSet);
  for (std::size_t B = 0; B < Blocks.size(); ++B) {
    BasicBlock &BB = Blocks[B];
    std::uint64_t *Base = SetWords + B * 4 * WordsPerSet;
    BB.Def = BitSetRef{Base + 0 * WordsPerSet, WordsPerSet};
    BB.Use = BitSetRef{Base + 1 * WordsPerSet, WordsPerSet};
    BB.LiveIn = BitSetRef{Base + 2 * WordsPerSet, WordsPerSet};
    BB.LiveOut = BitSetRef{Base + 3 * WordsPerSet, WordsPerSet};
    for (std::int32_t I = BB.Begin; I < BB.End; ++I) {
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(Instrs[static_cast<std::size_t>(I)], Defs, ND, Uses,
                      NU);
      for (unsigned U = 0; U < NU; ++U)
        if (!BB.Def.test(static_cast<unsigned>(Uses[U])))
          BB.Use.set(static_cast<unsigned>(Uses[U]));
      for (unsigned D = 0; D < ND; ++D)
        BB.Def.set(static_cast<unsigned>(Defs[D]));
    }
  }
}

unsigned FlowGraph::solveLiveness(const ICode &) {
  const unsigned W = WordsPerSet;
  unsigned Iterations = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    // Reverse order converges quickly for reducible flow graphs.
    for (std::size_t BI = Blocks.size(); BI-- > 0;) {
      BasicBlock &BB = Blocks[BI];
      std::uint64_t *Out = BB.LiveOut.Words;
      std::uint64_t *In = BB.LiveIn.Words;
      for (std::int32_t S : BB.Succ) {
        if (S < 0)
          continue;
        const std::uint64_t *SuccIn =
            Blocks[static_cast<std::size_t>(S)].LiveIn.Words;
        for (unsigned K = 0; K < W; ++K) {
          std::uint64_t Old = Out[K];
          std::uint64_t New = Old | SuccIn[K];
          Out[K] = New;
          Changed |= New != Old;
        }
      }
      const std::uint64_t *Def = BB.Def.Words;
      const std::uint64_t *Use = BB.Use.Words;
      for (unsigned K = 0; K < W; ++K) {
        std::uint64_t Old = In[K];
        std::uint64_t New = Old | Use[K] | (Out[K] & ~Def[K]);
        In[K] = New;
        Changed |= New != Old;
      }
    }
  }
  return Iterations;
}

#ifdef TICKC_CHECK_LIVENESS
// The pre-bitset reference solver, preserved as a differential oracle: the
// original per-block BitVector sets and the original unionWith /
// unionWithMinus relaxation. Structure (block ranges, successors) is taken
// from the already-built FlowGraph; def/use and the dataflow fixpoint are
// recomputed independently of the packed-word path.
void tcc::icode::solveLivenessReference(const ICode &IC, const FlowGraph &FG,
                                        std::vector<BitVector> &LiveIn,
                                        std::vector<BitVector> &LiveOut) {
  const auto &Instrs = IC.instrs();
  const unsigned NumRegs = IC.numRegs();
  const auto &Blocks = FG.blocks();
  const std::size_t NB = Blocks.size();

  std::vector<BitVector> Def(NB), Use(NB);
  LiveIn.assign(NB, BitVector(NumRegs));
  LiveOut.assign(NB, BitVector(NumRegs));
  for (std::size_t B = 0; B < NB; ++B) {
    Def[B] = BitVector(NumRegs);
    Use[B] = BitVector(NumRegs);
    for (std::int32_t I = Blocks[B].Begin; I < Blocks[B].End; ++I) {
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(Instrs[static_cast<std::size_t>(I)], Defs, ND, Uses,
                      NU);
      for (unsigned U = 0; U < NU; ++U)
        if (!Def[B].test(static_cast<unsigned>(Uses[U])))
          Use[B].set(static_cast<unsigned>(Uses[U]));
      for (unsigned D = 0; D < ND; ++D)
        Def[B].set(static_cast<unsigned>(Defs[D]));
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t BI = NB; BI-- > 0;) {
      for (std::int32_t S : Blocks[BI].Succ)
        if (S >= 0)
          Changed |= LiveOut[BI].unionWith(LiveIn[static_cast<std::size_t>(S)]);
      Changed |= LiveIn[BI].unionWith(Use[BI]);
      Changed |= LiveIn[BI].unionWithMinus(LiveOut[BI], Def[BI]);
    }
  }
}
#endif // TICKC_CHECK_LIVENESS
