//===- icode/FlowGraph.cpp - One-pass CFG construction + liveness ---------==//
//
// Paper §5.2: "ICODE builds a flow graph in one pass after all CGFs have
// been invoked ... The flow graph is a single array ... ICODE computes an
// upper bound on the number of basic blocks by summing the numbers of labels
// and jumps." Liveness uses "a traditional relaxation algorithm for
// computing exact live variable information."
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <cassert>

using namespace tcc;
using namespace tcc::icode;

/// True if the instruction ends a basic block.
static bool isTerminator(Op O) {
  switch (O) {
  case Op::Jump:
  case Op::BrCmpI:
  case Op::BrCmpII:
  case Op::BrCmpL:
  case Op::BrCmpD:
  case Op::BrTrue:
  case Op::BrFalse:
  case Op::RetI:
  case Op::RetL:
  case Op::RetD:
  case Op::RetVoid:
    return true;
  default:
    return false;
  }
}

/// Label id a branch targets, or -1.
static std::int32_t branchTarget(const Instr &I) {
  switch (I.Opcode) {
  case Op::Jump:
    return I.A;
  case Op::BrCmpI:
  case Op::BrCmpII:
  case Op::BrCmpL:
  case Op::BrCmpD:
    return I.C;
  case Op::BrTrue:
  case Op::BrFalse:
    return I.B;
  default:
    return -1;
  }
}

void FlowGraph::build(const ICode &IC) {
  const std::vector<Instr> &Instrs = IC.instrs();
  const auto N = static_cast<std::int32_t>(Instrs.size());
  NumRegs = IC.numRegs();

  Blocks.clear();
  // Upper bound on block count: one per label plus one per terminator,
  // plus the entry block — reserve once, as the paper's single-array
  // allocation does.
  unsigned Bound = 1 + IC.numLabels();
  for (const Instr &I : Instrs)
    Bound += isTerminator(I.Opcode);
  Blocks.reserve(Bound);

  BlockOfInstr.assign(static_cast<std::size_t>(N), -1);

  // Pass 1: carve blocks. A block begins at index 0, at each Label, and
  // after each terminator.
  std::int32_t Idx = 0;
  while (Idx < N) {
    BasicBlock BB;
    BB.Begin = Idx;
    // A leading run of Label instructions belongs to this block.
    while (Idx < N && Instrs[Idx].Opcode == Op::Label)
      ++Idx;
    while (Idx < N && Instrs[Idx].Opcode != Op::Label &&
           !isTerminator(Instrs[Idx].Opcode))
      ++Idx;
    if (Idx < N && isTerminator(Instrs[Idx].Opcode))
      ++Idx; // Terminator closes the block.
    BB.End = Idx;
    Blocks.push_back(BB);
  }
  if (Blocks.empty()) {
    BasicBlock BB;
    Blocks.push_back(BB);
  }

  for (std::size_t B = 0; B < Blocks.size(); ++B)
    for (std::int32_t I = Blocks[B].Begin; I < Blocks[B].End; ++I)
      BlockOfInstr[static_cast<std::size_t>(I)] =
          static_cast<std::int32_t>(B);

  // Pass 2: successors. Fall-through plus branch target.
  for (std::size_t B = 0; B < Blocks.size(); ++B) {
    BasicBlock &BB = Blocks[B];
    if (BB.Begin == BB.End)
      continue;
    const Instr &Last = Instrs[static_cast<std::size_t>(BB.End - 1)];
    bool Falls = true;
    switch (Last.Opcode) {
    case Op::Jump:
    case Op::RetI:
    case Op::RetL:
    case Op::RetD:
    case Op::RetVoid:
      Falls = false;
      break;
    default:
      break;
    }
    unsigned NS = 0;
    if (Falls && B + 1 < Blocks.size())
      BB.Succ[NS++] = static_cast<std::int32_t>(B + 1);
    std::int32_t Target = branchTarget(Last);
    if (Target >= 0) {
      std::int32_t TargetInstr = IC.labelTarget(Target);
      assert(TargetInstr >= 0 && "branch to unbound label");
      std::int32_t TargetBlock = BlockOfInstr[TargetInstr];
      if (NS == 0 || BB.Succ[0] != TargetBlock)
        BB.Succ[NS++] = TargetBlock;
    }
  }

  // Pass 3: def/use sets ("a minimal amount of local data flow
  // information: def and use sets for each basic block").
  for (BasicBlock &BB : Blocks) {
    BB.Def = BitVector(NumRegs);
    BB.Use = BitVector(NumRegs);
    BB.LiveIn = BitVector(NumRegs);
    BB.LiveOut = BitVector(NumRegs);
    for (std::int32_t I = BB.Begin; I < BB.End; ++I) {
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(Instrs[static_cast<std::size_t>(I)], Defs, ND, Uses,
                      NU);
      for (unsigned U = 0; U < NU; ++U)
        if (!BB.Def.test(static_cast<unsigned>(Uses[U])))
          BB.Use.set(static_cast<unsigned>(Uses[U]));
      for (unsigned D = 0; D < ND; ++D)
        BB.Def.set(static_cast<unsigned>(Defs[D]));
    }
  }
}

unsigned FlowGraph::solveLiveness(const ICode &) {
  unsigned Iterations = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    // Reverse order converges quickly for reducible flow graphs.
    for (std::size_t BI = Blocks.size(); BI-- > 0;) {
      BasicBlock &BB = Blocks[BI];
      for (std::int32_t S : BB.Succ)
        if (S >= 0)
          Changed |= BB.LiveOut.unionWith(Blocks[static_cast<std::size_t>(S)]
                                              .LiveIn);
      Changed |= BB.LiveIn.unionWith(BB.Use);
      Changed |= BB.LiveIn.unionWithMinus(BB.LiveOut, BB.Def);
    }
  }
  return Iterations;
}
