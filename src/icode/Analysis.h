//===- icode/Analysis.h - Flow graph, liveness, live intervals -*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal analysis structures of the ICODE back end (paper §5.2):
///
///  * FlowGraph — built in one pass over the instruction buffer after all
///    CGFs have run; a single array of blocks whose size is bounded by the
///    number of labels and jumps. Def/use sets are collected while building.
///  * Liveness — a traditional relaxation (iterative dataflow) computing
///    exact live-variable information. The four per-block sets are packed
///    uint64_t bitsets carved out of one arena allocation; the relaxation
///    runs word-at-a-time, so a pass over a block costs
///    O(blocks * words-per-set) with no per-bit branching.
///  * Live intervals — the coarse [first-live, last-live] approximation the
///    linear-scan allocator consumes; holes are deliberately ignored.
///
/// Every structure here allocates from the originating ICode's arena (see
/// ICode::arena()): on the pooled compile path nothing in this header
/// touches the system allocator in the steady state.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_ICODE_ANALYSIS_H
#define TICKC_ICODE_ANALYSIS_H

#include "icode/ICode.h"
#include "support/Arena.h"

#include <cstdint>
#include <memory>
#include <vector>

#ifdef TICKC_CHECK_LIVENESS
#include "support/BitVector.h"
#endif

namespace tcc {
namespace icode {

/// A non-owning view of a fixed-width bitset whose words live in an arena.
/// The per-block dataflow sets are BitSetRefs into one packed allocation
/// (see FlowGraph::build), so copying a BasicBlock copies two pointers, not
/// a heap-backed set.
struct BitSetRef {
  std::uint64_t *Words = nullptr;
  std::uint32_t NumWords = 0;

  bool test(unsigned I) const {
    return (Words[I / 64] >> (I % 64)) & 1u;
  }
  void set(unsigned I) { Words[I / 64] |= std::uint64_t(1) << (I % 64); }
  void clear(unsigned I) { Words[I / 64] &= ~(std::uint64_t(1) << (I % 64)); }
  void clearAll() {
    for (std::uint32_t W = 0; W < NumWords; ++W)
      Words[W] = 0;
  }
  void copyFrom(const BitSetRef &Other) {
    for (std::uint32_t W = 0; W < NumWords; ++W)
      Words[W] = Other.Words[W];
  }
  unsigned count() const {
    unsigned N = 0;
    for (std::uint32_t W = 0; W < NumWords; ++W)
      N += static_cast<unsigned>(__builtin_popcountll(Words[W]));
    return N;
  }
  /// Calls \p Fn(index) for each set bit, ascending.
  template <typename FnT> void forEach(FnT Fn) const {
    for (std::uint32_t W = 0; W < NumWords; ++W) {
      std::uint64_t Word = Words[W];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Fn(W * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }
};

/// A basic block: instruction index range [Begin, End), up to two
/// successors, and the dataflow sets over virtual registers.
struct BasicBlock {
  std::int32_t Begin = 0;
  std::int32_t End = 0;
  std::int32_t Succ[2] = {-1, -1};
  BitSetRef Def, Use, LiveIn, LiveOut;
};

/// The control-flow graph plus liveness results.
class FlowGraph {
public:
  /// Allocates from a private arena — tests and ad-hoc analysis.
  FlowGraph();
  /// Allocates from \p BackingArena (the compile pipeline passes the
  /// originating ICode's arena).
  explicit FlowGraph(Arena &BackingArena);

  /// Builds blocks and per-block def/use sets in one pass (paper §5.2:
  /// "ICODE builds a flow graph in one pass after all CGFs have been
  /// invoked").
  void build(const ICode &IC);

  /// Iterative live-variable analysis to fixpoint, word-at-a-time over the
  /// packed sets. Returns the number of passes over the block array.
  unsigned solveLiveness(const ICode &IC);

  const ArenaVector<BasicBlock> &blocks() const { return Blocks; }
  ArenaVector<BasicBlock> &blocks() { return Blocks; }
  /// Block index containing instruction \p InstrIdx.
  std::int32_t blockOf(std::int32_t InstrIdx) const {
    return BlockOfInstr[static_cast<std::size_t>(InstrIdx)];
  }
  /// Words per dataflow set (ceil(numRegs / 64)).
  unsigned wordsPerSet() const { return WordsPerSet; }

private:
  Arena &arena() { return *A; }

  std::unique_ptr<Arena> Owned;
  Arena *A;
  ArenaVector<BasicBlock> Blocks;
  std::int32_t *BlockOfInstr = nullptr;
  unsigned NumRegs = 0;
  unsigned WordsPerSet = 0;
};

#ifdef TICKC_CHECK_LIVENESS
/// Oracle for the liveness property test: recomputes per-block def/use and
/// runs the pre-bitset, BitVector-based relaxation over the same block
/// structure. The packed word-at-a-time dataflow must produce bit-identical
/// LiveIn/LiveOut. Compiled only under TICKC_CHECK_LIVENESS.
void solveLivenessReference(const ICode &IC, const FlowGraph &FG,
                            std::vector<BitVector> &LiveIn,
                            std::vector<BitVector> &LiveOut);
#endif

/// A live interval [Start, End] (inclusive instruction indices) for one
/// virtual register, with a usage-frequency weight derived from the
/// client's loop hints.
struct Interval {
  VReg Reg = -1;
  std::int32_t Start = 0;
  std::int32_t End = 0;
  std::uint64_t Weight = 0;
  bool IsFloat = false;
};

/// Where the allocator put each virtual register. Location points into the
/// originating ICode's arena.
struct Allocation {
  static constexpr int Unused = -1;  ///< Register never occurs.
  static constexpr int Spilled = -2; ///< Lives in a stack slot.
  /// Per-vreg: pool index >= 0, or Unused/Spilled. numRegs() entries.
  int *Location = nullptr;
  unsigned NumRegs = 0;
  unsigned NumSpilled = 0;
};

/// Builds the interval list, sorted by end point, in IC's arena. Weights
/// accumulate 10^loop-depth per occurrence, driven by Op::Hint markers.
ArenaVector<Interval> buildLiveIntervals(const ICode &IC, const FlowGraph &FG);

/// Per-vreg "must live in memory" mask (1 byte per vreg, in IC's arena):
/// double-precision values whose interval crosses a call site cannot stay
/// in (caller-saved) XMM registers. The integer pool is callee-saved, so
/// only float vregs are affected. Returns null when the code has no call
/// sites — callers treat null as all-clear.
const std::uint8_t *computeMustSpill(const ICode &IC,
                                     const Interval *Intervals,
                                     std::size_t NumIntervals);

/// Linear-scan register allocation over live intervals — Figure 3 of the
/// paper (its original publication). O(I * R). \p Intervals must be sorted
/// by increasing end point; the active list is a fixed array bounded by the
/// physical register count, so the scan itself performs no allocation
/// beyond the result's Location array.
Allocation allocateLinearScan(const ICode &IC,
                              const ArenaVector<Interval> &Intervals,
                              int NumIntRegs, int NumFloatRegs,
                              SpillHeuristic Spill,
                              const std::uint8_t *MustSpill);

/// Chaitin-style graph-coloring allocation (paper §5.2's baseline), with
/// Briggs-style optimistic coloring. Interference edges come from exact
/// per-instruction liveness, so its coloring can beat live intervals. The
/// interference graph is a packed bitset matrix in IC's arena — the same
/// representation the liveness solver uses — so the regalloc ablation
/// compares allocator algorithms, not container malloc habits.
Allocation allocateGraphColor(const ICode &IC, const FlowGraph &FG,
                              int NumIntRegs, int NumFloatRegs,
                              SpillHeuristic Spill,
                              const std::uint8_t *MustSpill);

/// Dead-code elimination over pure instructions whose results are never
/// used; part of the peephole machinery run before allocation. Returns the
/// number of instructions erased (turned into Nop). \p Scratch backs the
/// use-count table.
unsigned eliminateDeadCode(Instr *Instrs, std::size_t NumInstrs,
                           unsigned NumRegs, Arena &Scratch);

/// Convenience overload over a std::vector buffer (tests, ad-hoc passes).
inline unsigned eliminateDeadCode(std::vector<Instr> &Instrs,
                                  unsigned NumRegs) {
  Arena Scratch(4096);
  return eliminateDeadCode(Instrs.data(), Instrs.size(), NumRegs, Scratch);
}

} // namespace icode
} // namespace tcc

#endif // TICKC_ICODE_ANALYSIS_H
