//===- icode/Analysis.h - Flow graph, liveness, live intervals -*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal analysis structures of the ICODE back end (paper §5.2):
///
///  * FlowGraph — built in one pass over the instruction buffer after all
///    CGFs have run; a single array of blocks whose size is bounded by the
///    number of labels and jumps. Def/use sets are collected while building.
///  * Liveness — a traditional relaxation (iterative dataflow) computing
///    exact live-variable information.
///  * Live intervals — the coarse [first-live, last-live] approximation the
///    linear-scan allocator consumes; holes are deliberately ignored.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_ICODE_ANALYSIS_H
#define TICKC_ICODE_ANALYSIS_H

#include "icode/ICode.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace tcc {
namespace icode {

/// A basic block: instruction index range [Begin, End), up to two
/// successors, and the dataflow sets over virtual registers.
struct BasicBlock {
  std::int32_t Begin = 0;
  std::int32_t End = 0;
  std::int32_t Succ[2] = {-1, -1};
  BitVector Def, Use, LiveIn, LiveOut;
};

/// The control-flow graph plus liveness results.
class FlowGraph {
public:
  /// Builds blocks and per-block def/use sets in one pass (paper §5.2:
  /// "ICODE builds a flow graph in one pass after all CGFs have been
  /// invoked").
  void build(const ICode &IC);

  /// Iterative live-variable analysis to fixpoint. Returns the number of
  /// passes over the block array.
  unsigned solveLiveness(const ICode &IC);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  std::vector<BasicBlock> &blocks() { return Blocks; }
  /// Block index containing instruction \p InstrIdx.
  std::int32_t blockOf(std::int32_t InstrIdx) const {
    return BlockOfInstr[static_cast<std::size_t>(InstrIdx)];
  }

private:
  std::vector<BasicBlock> Blocks;
  std::vector<std::int32_t> BlockOfInstr;
  unsigned NumRegs = 0;
};

/// A live interval [Start, End] (inclusive instruction indices) for one
/// virtual register, with a usage-frequency weight derived from the
/// client's loop hints.
struct Interval {
  VReg Reg = -1;
  std::int32_t Start = 0;
  std::int32_t End = 0;
  std::uint64_t Weight = 0;
  bool IsFloat = false;
};

/// Where the allocator put each virtual register.
struct Allocation {
  static constexpr int Unused = -1;  ///< Register never occurs.
  static constexpr int Spilled = -2; ///< Lives in a stack slot.
  /// Per-vreg: pool index >= 0, or Unused/Spilled.
  std::vector<int> Location;
  unsigned NumSpilled = 0;
};

/// Builds the sorted-by-endpoint interval list. Weights accumulate
/// 10^loop-depth per occurrence, driven by Op::Hint markers.
std::vector<Interval> buildLiveIntervals(const ICode &IC, const FlowGraph &FG);

/// Per-vreg "must live in memory" mask: double-precision values whose
/// interval crosses a call site cannot stay in (caller-saved) XMM registers.
/// The integer pool is callee-saved, so only float vregs are affected.
std::vector<bool> computeMustSpill(const ICode &IC,
                                   const std::vector<Interval> &Intervals);

/// Linear-scan register allocation over live intervals — Figure 3 of the
/// paper (its original publication). O(I * R).
Allocation allocateLinearScan(const ICode &IC, std::vector<Interval> Intervals,
                              int NumIntRegs, int NumFloatRegs,
                              SpillHeuristic Spill,
                              const std::vector<bool> &MustSpill);

/// Chaitin-style graph-coloring allocation (paper §5.2's baseline), with
/// Briggs-style optimistic coloring. Interference edges come from exact
/// per-instruction liveness, so its coloring can beat live intervals.
Allocation allocateGraphColor(const ICode &IC, const FlowGraph &FG,
                              int NumIntRegs, int NumFloatRegs,
                              SpillHeuristic Spill,
                              const std::vector<bool> &MustSpill);

/// Dead-code elimination over pure instructions whose results are never
/// used; part of the peephole machinery run before allocation. Returns the
/// number of instructions erased (turned into Nop).
unsigned eliminateDeadCode(std::vector<Instr> &Instrs, unsigned NumRegs);

} // namespace icode
} // namespace tcc

#endif // TICKC_ICODE_ANALYSIS_H
