//===- icode/Emit.cpp - ICODE-to-binary translation -----------------------==//
//
// The final phase of ICODE code generation (paper §5.2): "The code emitter
// simply makes one pass through the buffer of ICODE instructions. For each
// ICODE instruction, it invokes the VCODE macro corresponding to the given
// instruction, prepending and appending spill code as necessary, and
// performing some peephole optimizations and strength reduction."
//
// Spill code is folded into the VCODE layer, which accepts negative
// (stack-slot) register designators. Opcode usage is recorded in the shared
// EmitterUsage registry, reproducing the emitter-pruning measurement of the
// paper's link-time analysis.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"
#include "icode/ICode.h"

#include "observability/Trace.h"
#include "support/Error.h"
#include "support/Timing.h"

#include <cassert>
#include <climits>

using namespace tcc;
using namespace tcc::icode;
using vcode::VCode;

namespace {

/// Translates one allocated ICODE buffer into machine code through VCode.
class Emitter {
public:
  Emitter(const ICode &IC, VCode &V, const Allocation &Alloc)
      : IC(IC), V(V), Alloc(Alloc),
        SlotDesignator(IC.arena().allocateArray<int>(IC.numRegs())),
        VLabels(IC.arena().allocateArray<vcode::Label>(IC.numLabels())) {
    for (unsigned R = 0; R < IC.numRegs(); ++R)
      SlotDesignator[R] = INT_MIN;
    for (unsigned I = 0; I < IC.numLabels(); ++I)
      VLabels[I] = V.newLabel();
  }

  void run() {
    const auto &Instrs = IC.instrs();
    V.enter();
    for (std::size_t I = 0, E = Instrs.size(); I != E; ++I)
      emitOne(Instrs, I);
  }

private:
  /// Register designator (pool index or stack slot) for a virtual register.
  vcode::Reg loc(VReg R) {
    int L = Alloc.Location[static_cast<std::size_t>(R)];
    if (L >= 0)
      return L;
    assert(L == Allocation::Spilled && "operand of emitted instr unallocated");
    int &Slot = SlotDesignator[static_cast<std::size_t>(R)];
    if (Slot == INT_MIN)
      Slot = VCode::spillReg(V.allocSlot());
    return Slot;
  }

  /// True if a jump at \p I to label \p LabelId only skips no-ops — the
  /// emitter's jump-to-next peephole.
  bool jumpIsFallthrough(const ArenaVector<Instr> &Instrs, std::size_t I,
                         std::int32_t LabelId) const {
    std::int32_t Target = IC.labelTarget(LabelId);
    if (Target < static_cast<std::int32_t>(I))
      return false;
    for (std::size_t K = I + 1; K < static_cast<std::size_t>(Target); ++K) {
      Op O = Instrs[K].Opcode;
      if (O != Op::Nop && O != Op::Hint && O != Op::Label)
        return false;
    }
    return true;
  }

  void emitOne(const ArenaVector<Instr> &Instrs, std::size_t I) {
    const Instr &In = Instrs[I];
    if (In.Opcode != Op::Nop && In.Opcode != Op::Hint)
      ICode::emitterUsage().noteUse(In.Opcode);
    auto K = static_cast<CmpKind>(In.Sub);
    switch (In.Opcode) {
    case Op::Nop:
    case Op::Hint:
      break;
    case Op::ProfileInc:
      V.profileEntry(reinterpret_cast<const void *>(
          static_cast<std::uintptr_t>(IC.poolValue(In.A))));
      break;
    case Op::SetI:
      V.setI(loc(In.A), In.B);
      break;
    case Op::SetL:
      V.setL(loc(In.A), static_cast<std::int64_t>(IC.poolValue(In.B)));
      break;
    case Op::SetP:
      V.setP(loc(In.A), reinterpret_cast<const void *>(
                            static_cast<std::uintptr_t>(IC.poolValue(In.B))));
      break;
    case Op::SetD: {
      std::uint64_t Bits = IC.poolValue(In.B);
      double D;
      static_assert(sizeof(D) == sizeof(Bits));
      __builtin_memcpy(&D, &Bits, 8);
      V.setD(loc(In.A), D);
      break;
    }
    case Op::MovI:
      V.movL(loc(In.A), loc(In.B));
      break;
    case Op::MovD:
      V.movD(loc(In.A), loc(In.B));
      break;
    case Op::AddI:
      V.addI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::SubI:
      V.subI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::MulI:
      V.mulI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::DivI:
      V.divI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::ModI:
      V.modI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::DivUI:
      V.divUI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::ModUI:
      V.modUI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::AndI:
      V.andI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::OrI:
      V.orI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::XorI:
      V.xorI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::ShlI:
      V.shlI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::ShrI:
      V.shrI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::UShrI:
      V.ushrI(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::AddII:
      V.addII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::SubII:
      V.subII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::MulII:
      V.mulII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::DivII:
      V.divII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::ModII:
      V.modII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::AndII:
      V.andII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::OrII:
      V.orII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::XorII:
      V.xorII(loc(In.A), loc(In.B), In.C);
      break;
    case Op::ShlII:
      V.shlII(loc(In.A), loc(In.B), static_cast<std::uint8_t>(In.C));
      break;
    case Op::ShrII:
      V.shrII(loc(In.A), loc(In.B), static_cast<std::uint8_t>(In.C));
      break;
    case Op::UShrII:
      V.ushrII(loc(In.A), loc(In.B), static_cast<std::uint8_t>(In.C));
      break;
    case Op::NegI:
      V.negI(loc(In.A), loc(In.B));
      break;
    case Op::NotI:
      V.notI(loc(In.A), loc(In.B));
      break;
    case Op::AddL:
      V.addL(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::SubL:
      V.subL(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::MulL:
      V.mulL(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::AddLI:
      V.addLI(loc(In.A), loc(In.B), In.C);
      break;
    case Op::MulLI:
      V.mulLI(loc(In.A), loc(In.B), In.C);
      break;
    case Op::ShlLI:
      V.shlLI(loc(In.A), loc(In.B), static_cast<std::uint8_t>(In.C));
      break;
    case Op::SextIToL:
      V.sextIToL(loc(In.A), loc(In.B));
      break;
    case Op::AddD:
      V.addD(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::SubD:
      V.subD(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::MulD:
      V.mulD(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::DivD:
      V.divD(loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::NegD:
      V.negD(loc(In.A), loc(In.B));
      break;
    case Op::CvtIToD:
      V.cvtIToD(loc(In.A), loc(In.B));
      break;
    case Op::CvtLToD:
      V.cvtLToD(loc(In.A), loc(In.B));
      break;
    case Op::CvtDToI:
      V.cvtDToI(loc(In.A), loc(In.B));
      break;
    case Op::CmpSetI:
      V.cmpSetI(K, loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::CmpSetII:
      V.cmpSetII(K, loc(In.A), loc(In.B), In.C);
      break;
    case Op::CmpSetL:
      V.cmpSetL(K, loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::CmpSetD:
      V.cmpSetD(K, loc(In.A), loc(In.B), loc(In.C));
      break;
    case Op::LdI:
      V.ldI(loc(In.A), loc(In.B), In.C);
      break;
    case Op::LdL:
      V.ldL(loc(In.A), loc(In.B), In.C);
      break;
    case Op::LdI8s:
      V.ldI8s(loc(In.A), loc(In.B), In.C);
      break;
    case Op::LdI8u:
      V.ldI8u(loc(In.A), loc(In.B), In.C);
      break;
    case Op::LdI16s:
      V.ldI16s(loc(In.A), loc(In.B), In.C);
      break;
    case Op::LdI16u:
      V.ldI16u(loc(In.A), loc(In.B), In.C);
      break;
    case Op::LdD:
      V.ldD(loc(In.A), loc(In.B), In.C);
      break;
    case Op::StI:
      V.stI(loc(In.A), In.C, loc(In.B));
      break;
    case Op::StL:
      V.stL(loc(In.A), In.C, loc(In.B));
      break;
    case Op::StI8:
      V.stI8(loc(In.A), In.C, loc(In.B));
      break;
    case Op::StI16:
      V.stI16(loc(In.A), In.C, loc(In.B));
      break;
    case Op::StD:
      V.stD(loc(In.A), In.C, loc(In.B));
      break;
    case Op::Label:
      V.bindLabel(VLabels[static_cast<std::size_t>(In.A)]);
      break;
    case Op::Jump:
      if (!jumpIsFallthrough(Instrs, I, In.A))
        V.jump(VLabels[static_cast<std::size_t>(In.A)]);
      break;
    case Op::BrCmpI:
      V.brCmpI(K, loc(In.A), loc(In.B), VLabels[In.C]);
      break;
    case Op::BrCmpII:
      V.brCmpII(K, loc(In.A), In.B, VLabels[In.C]);
      break;
    case Op::BrCmpL:
      V.brCmpL(K, loc(In.A), loc(In.B), VLabels[In.C]);
      break;
    case Op::BrCmpD:
      V.brCmpD(K, loc(In.A), loc(In.B), VLabels[In.C]);
      break;
    case Op::BrTrue:
      V.brTrueI(loc(In.A), VLabels[In.B]);
      break;
    case Op::BrFalse:
      V.brFalseI(loc(In.A), VLabels[In.B]);
      break;
    case Op::BindArgI:
      V.bindArgI(static_cast<unsigned>(In.B), loc(In.A));
      break;
    case Op::BindArgD:
      V.bindArgD(static_cast<unsigned>(In.B), loc(In.A));
      break;
    case Op::RetI:
      V.retI(loc(In.A));
      break;
    case Op::RetL:
      V.retL(loc(In.A));
      break;
    case Op::RetD:
      V.retD(loc(In.A));
      break;
    case Op::RetVoid:
      V.retVoid();
      break;
    case Op::CallArgI:
      V.prepareCallArgI(static_cast<unsigned>(In.A), loc(In.B));
      break;
    case Op::CallArgP:
      V.prepareCallArgP(static_cast<unsigned>(In.A),
                        reinterpret_cast<const void *>(
                            static_cast<std::uintptr_t>(IC.poolValue(In.B))));
      break;
    case Op::CallArgII:
      V.prepareCallArgII(static_cast<unsigned>(In.A),
                         static_cast<std::int64_t>(IC.poolValue(In.B)));
      break;
    case Op::CallArgD:
      V.prepareCallArgD(static_cast<unsigned>(In.A), loc(In.B));
      break;
    case Op::Call:
      V.emitCall(reinterpret_cast<const void *>(
                     static_cast<std::uintptr_t>(IC.poolValue(In.A))),
                 static_cast<unsigned>(In.B));
      break;
    case Op::CallIndirect:
      V.emitCallIndirect(loc(In.A), static_cast<unsigned>(In.B));
      break;
    case Op::ResultI:
      V.resultToI(loc(In.A));
      break;
    case Op::ResultL:
      V.resultToL(loc(In.A));
      break;
    case Op::ResultD:
      V.resultToD(loc(In.A));
      break;
    }
  }

  const ICode &IC;
  VCode &V;
  const Allocation &Alloc;
  int *SlotDesignator;      ///< Arena-resident, numRegs() entries.
  vcode::Label *VLabels;    ///< Arena-resident, numLabels() entries.
};

} // namespace

void *ICode::compileTo(VCode &V, RegAllocKind Kind, CompileStats *Stats,
                       SpillHeuristic Spill, const CompileAudit *Audit) {
  CompileStats Local;
  CompileStats &S = Stats ? *Stats : Local;

  {
    PhaseScope T(S.CyclesPeephole);
    obs::TraceSpan Span(obs::SpanKind::Peephole);
    eliminateDeadCode(Instrs.data(), Instrs.size(), numRegs(), *A);
  }
  if (Audit && Audit->PostPeephole)
    Audit->PostPeephole(Audit->Ctx, *this);

  // Every analysis phase allocates from the ICode's arena: on the pooled
  // compile path this is a CompileContext arena reset between compiles, so
  // the whole pipeline below is heap-allocation-free in the steady state.
  FlowGraph FG(*A);
  {
    PhaseScope T(S.CyclesFlowGraph);
    obs::TraceSpan Span(obs::SpanKind::FlowGraph);
    FG.build(*this);
  }

  {
    PhaseScope T(S.CyclesLiveness);
    obs::TraceSpan Span(obs::SpanKind::Liveness);
    S.NumLivenessIterations = FG.solveLiveness(*this);
  }

  // Intervals are needed for linear scan and, under either allocator, for
  // deciding which caller-saved-class values cross a call.
  ArenaVector<Interval> Intervals;
  const std::uint8_t *MustSpill = nullptr;
  {
    PhaseScope T(S.CyclesIntervals);
    obs::TraceSpan Span(obs::SpanKind::LiveIntervals);
    Intervals = buildLiveIntervals(*this, FG);
    MustSpill = computeMustSpill(*this, Intervals.data(), Intervals.size());
  }

  Allocation Alloc;
  {
    PhaseScope T(S.CyclesRegAlloc);
    obs::TraceSpan Span(Kind == RegAllocKind::LinearScan
                            ? obs::SpanKind::LinearScan
                            : obs::SpanKind::GraphColor);
    Alloc =
        Kind == RegAllocKind::LinearScan
            ? allocateLinearScan(*this, Intervals, vcode::VCode::NumIntPool,
                                 vcode::VCode::NumFloatPool, Spill, MustSpill)
            : allocateGraphColor(*this, FG, vcode::VCode::NumIntPool,
                                 vcode::VCode::NumFloatPool, Spill, MustSpill);
  }
  if (Audit && Audit->PostRegAlloc)
    Audit->PostRegAlloc(Audit->Ctx, *this, Alloc);

  void *Entry;
  {
    // The final stat tally stays inside the emit scope so the per-phase
    // cycles keep covering the whole pipeline (tickc-report drift guard).
    PhaseScope T(S.CyclesEmit);
    obs::TraceSpan Span(obs::SpanKind::Emit);
    Emitter E(*this, V, Alloc);
    E.run();
    Entry = V.finish();
    S.NumBasicBlocks = static_cast<unsigned>(FG.blocks().size());
    S.NumIntervals = 0;
    for (unsigned R = 0; R < Alloc.NumRegs; ++R)
      S.NumIntervals += Alloc.Location[R] != Allocation::Unused;
    S.NumSpilledIntervals = Alloc.NumSpilled;
    for (const Instr &In : Instrs)
      S.NumIRInstrs += In.Opcode != Op::Nop && In.Opcode != Op::Hint &&
                       In.Opcode != Op::Label;
    S.NumMachineInstrs = V.instructionsEmitted();
  }
  return Entry;
}
