//===- icode/LiveIntervals.cpp - Coarse live-interval construction --------==//
//
// Paper §5.2: "ICODE does not compute precise live range information, but
// instead uses a coarse approximation that we call live intervals ... a live
// interval of a variable is the interval [m, n], where m is the first
// instruction at which v is ever live, and n is the last instruction at
// which it is ever live. ... there may be large portions of [m, n] in which
// v is not live, but we simply ignore them. ... given live variable
// information, creating a list of live intervals sorted by start or end
// point is accomplished in one pass over the code."
//
// All scratch (per-vreg Start/End/Weight) and the result list live in the
// originating ICode's arena; the sort is in place over arena storage.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <algorithm>

using namespace tcc;
using namespace tcc::icode;

ArenaVector<Interval> tcc::icode::buildLiveIntervals(const ICode &IC,
                                                     const FlowGraph &FG) {
  const auto &Instrs = IC.instrs();
  const unsigned NumRegs = IC.numRegs();
  Arena &A = IC.arena();

  auto *Start = A.allocateArray<std::int32_t>(NumRegs);
  auto *End = A.allocateArray<std::int32_t>(NumRegs);
  auto *Weight = A.allocateArray<std::uint64_t>(NumRegs);
  for (unsigned R = 0; R < NumRegs; ++R) {
    Start[R] = -1;
    End[R] = -1;
    Weight[R] = 0;
  }

  auto Extend = [&](unsigned R, std::int32_t Pos) {
    if (Start[R] < 0 || Pos < Start[R])
      Start[R] = Pos;
    if (Pos > End[R])
      End[R] = Pos;
  };

  // Occurrences, with usage weights from the loop-nesting hints.
  std::uint64_t HintWeight = 1;
  int Depth = 0;
  for (std::size_t I = 0, E = Instrs.size(); I != E; ++I) {
    const Instr &In = Instrs[I];
    if (In.Opcode == Op::Hint) {
      Depth += In.A;
      if (Depth < 0)
        Depth = 0;
      HintWeight = 1;
      for (int D = 0; D < Depth && D < 6; ++D)
        HintWeight *= 10;
      continue;
    }
    VReg Defs[2], Uses[3];
    unsigned ND, NU;
    ICode::defsUses(In, Defs, ND, Uses, NU);
    auto Pos = static_cast<std::int32_t>(I);
    for (unsigned U = 0; U < NU; ++U) {
      Extend(static_cast<unsigned>(Uses[U]), Pos);
      Weight[static_cast<unsigned>(Uses[U])] += HintWeight;
    }
    for (unsigned D = 0; D < ND; ++D) {
      Extend(static_cast<unsigned>(Defs[D]), Pos);
      Weight[static_cast<unsigned>(Defs[D])] += HintWeight;
    }
  }

  // Block-boundary extension: values live into a block reach its first
  // instruction; values live out reach its last. This is what turns
  // loop-carried variables into intervals spanning the whole loop.
  for (const BasicBlock &BB : FG.blocks()) {
    if (BB.Begin == BB.End)
      continue;
    BB.LiveIn.forEach([&](unsigned R) { Extend(R, BB.Begin); });
    BB.LiveOut.forEach([&](unsigned R) { Extend(R, BB.End - 1); });
  }

  ArenaVector<Interval> Result(A);
  Result.reserve(NumRegs);
  for (unsigned R = 0; R < NumRegs; ++R) {
    if (Start[R] < 0)
      continue; // Never occurs.
    Interval IV;
    IV.Reg = static_cast<VReg>(R);
    IV.Start = Start[R];
    IV.End = End[R];
    IV.Weight = Weight[R];
    IV.IsFloat = IC.isFloatReg(static_cast<VReg>(R));
    Result.push_back(IV);
  }
  std::sort(Result.begin(), Result.end(),
            [](const Interval &A, const Interval &B) {
              if (A.End != B.End)
                return A.End < B.End;
              return A.Start < B.Start;
            });
  return Result;
}
