//===- icode/ICode.cpp - ICODE buffer, def/use model, labels --------------==//

#include "icode/ICode.h"

#include "support/Error.h"

#include <cassert>
#include <cstring>

using namespace tcc;
using namespace tcc::icode;

ICode::ICode() : Owned(new Arena()), A(Owned.get()), Instrs(*A), Pool(*A),
                 RegIsFloat(*A), LabelTargets(*A) {
  Instrs.reserve(64);
  Pool.reserve(8);
}

ICode::ICode(Arena &BackingArena)
    : A(&BackingArena), Instrs(*A), Pool(*A), RegIsFloat(*A),
      LabelTargets(*A) {
  Instrs.reserve(64);
  Pool.reserve(8);
}

VReg ICode::newIntReg() {
  RegIsFloat.push_back(0);
  return static_cast<VReg>(RegIsFloat.size() - 1);
}

VReg ICode::newFloatReg() {
  RegIsFloat.push_back(1);
  return static_cast<VReg>(RegIsFloat.size() - 1);
}

void ICode::setD(VReg D, double Imm) {
  std::uint64_t Bits;
  std::memcpy(&Bits, &Imm, 8);
  append(Op::SetD, 0, D, addPool(Bits), 0);
}

ILabel ICode::newLabel() {
  LabelTargets.push_back(-1);
  return ILabel{static_cast<std::int32_t>(NumLabels++)};
}

void ICode::bindLabel(ILabel L) {
  assert(L.valid() && static_cast<unsigned>(L.Id) < NumLabels && "bad label");
  assert(LabelTargets[L.Id] == -1 && "label bound twice");
  LabelTargets[L.Id] = static_cast<std::int32_t>(Instrs.size());
  append(Op::Label, 0, L.Id, 0, 0);
}

ICode ICode::clone() const {
  ICode C;
  auto CopyInto = [](auto &Dst, const auto &Src) {
    Dst.reserve(Src.size());
    for (std::size_t I = 0, E = Src.size(); I != E; ++I)
      Dst.push_back(Src[I]);
  };
  CopyInto(C.Instrs, Instrs);
  CopyInto(C.Pool, Pool);
  CopyInto(C.RegIsFloat, RegIsFloat);
  CopyInto(C.LabelTargets, LabelTargets);
  C.NumLabels = NumLabels;
  return C;
}

EmitterUsage &ICode::emitterUsage() {
  static EmitterUsage Usage;
  return Usage;
}

unsigned EmitterUsage::usedOpcodes() const {
  unsigned N = 0;
  for (bool B : Used)
    N += B;
  return N;
}

const char *tcc::icode::opName(Op O) {
  switch (O) {
#define CASE(X)                                                                \
  case Op::X:                                                                  \
    return #X
    CASE(SetI);
    CASE(SetL);
    CASE(SetD);
    CASE(MovI);
    CASE(MovD);
    CASE(AddI);
    CASE(SubI);
    CASE(MulI);
    CASE(DivI);
    CASE(ModI);
    CASE(DivUI);
    CASE(ModUI);
    CASE(AndI);
    CASE(OrI);
    CASE(XorI);
    CASE(ShlI);
    CASE(ShrI);
    CASE(UShrI);
    CASE(AddII);
    CASE(SubII);
    CASE(MulII);
    CASE(DivII);
    CASE(ModII);
    CASE(AndII);
    CASE(OrII);
    CASE(XorII);
    CASE(ShlII);
    CASE(ShrII);
    CASE(UShrII);
    CASE(NegI);
    CASE(NotI);
    CASE(AddL);
    CASE(SubL);
    CASE(MulL);
    CASE(AddLI);
    CASE(MulLI);
    CASE(ShlLI);
    CASE(SextIToL);
    CASE(AddD);
    CASE(SubD);
    CASE(MulD);
    CASE(DivD);
    CASE(NegD);
    CASE(CvtIToD);
    CASE(CvtLToD);
    CASE(CvtDToI);
    CASE(CmpSetI);
    CASE(CmpSetII);
    CASE(CmpSetL);
    CASE(CmpSetD);
    CASE(LdI);
    CASE(LdL);
    CASE(LdI8s);
    CASE(LdI8u);
    CASE(LdI16s);
    CASE(LdI16u);
    CASE(LdD);
    CASE(StI);
    CASE(StL);
    CASE(StI8);
    CASE(StI16);
    CASE(StD);
    CASE(Label);
    CASE(Jump);
    CASE(BrCmpI);
    CASE(BrCmpII);
    CASE(BrCmpL);
    CASE(BrCmpD);
    CASE(BrTrue);
    CASE(BrFalse);
    CASE(BindArgI);
    CASE(BindArgD);
    CASE(RetI);
    CASE(RetL);
    CASE(RetD);
    CASE(RetVoid);
    CASE(CallArgI);
    CASE(CallArgP);
    CASE(CallArgII);
    CASE(CallArgD);
    CASE(Call);
    CASE(CallIndirect);
    CASE(ResultI);
    CASE(ResultL);
    CASE(ResultD);
    CASE(Hint);
    CASE(ProfileInc);
    CASE(SetP);
    CASE(Nop);
#undef CASE
  }
  tcc_unreachable("bad opcode");
}

void ICode::defsUses(const Instr &I, VReg *Defs, unsigned &NumDefs, VReg *Uses,
                     unsigned &NumUses) {
  NumDefs = 0;
  NumUses = 0;
  switch (I.Opcode) {
  // def-only
  case Op::SetI:
  case Op::SetL:
  case Op::SetP:
  case Op::SetD:
  case Op::BindArgI:
  case Op::BindArgD:
  case Op::ResultI:
  case Op::ResultL:
  case Op::ResultD:
    Defs[NumDefs++] = I.A;
    break;
  // def A, use B
  case Op::MovI:
  case Op::MovD:
  case Op::NegI:
  case Op::NotI:
  case Op::SextIToL:
  case Op::NegD:
  case Op::CvtIToD:
  case Op::CvtLToD:
  case Op::CvtDToI:
  case Op::AddII:
  case Op::SubII:
  case Op::MulII:
  case Op::DivII:
  case Op::ModII:
  case Op::AndII:
  case Op::OrII:
  case Op::XorII:
  case Op::ShlII:
  case Op::ShrII:
  case Op::UShrII:
  case Op::AddLI:
  case Op::MulLI:
  case Op::ShlLI:
  case Op::CmpSetII:
  case Op::LdI:
  case Op::LdL:
  case Op::LdI8s:
  case Op::LdI8u:
  case Op::LdI16s:
  case Op::LdI16u:
  case Op::LdD:
    Defs[NumDefs++] = I.A;
    Uses[NumUses++] = I.B;
    break;
  // def A, use B and C
  case Op::AddI:
  case Op::SubI:
  case Op::MulI:
  case Op::DivI:
  case Op::ModI:
  case Op::DivUI:
  case Op::ModUI:
  case Op::AndI:
  case Op::OrI:
  case Op::XorI:
  case Op::ShlI:
  case Op::ShrI:
  case Op::UShrI:
  case Op::AddL:
  case Op::SubL:
  case Op::MulL:
  case Op::AddD:
  case Op::SubD:
  case Op::MulD:
  case Op::DivD:
  case Op::CmpSetI:
  case Op::CmpSetL:
  case Op::CmpSetD:
    Defs[NumDefs++] = I.A;
    Uses[NumUses++] = I.B;
    Uses[NumUses++] = I.C;
    break;
  // stores: use A (base) and B (value)
  case Op::StI:
  case Op::StL:
  case Op::StI8:
  case Op::StI16:
  case Op::StD:
    Uses[NumUses++] = I.A;
    Uses[NumUses++] = I.B;
    break;
  // branches
  case Op::BrCmpI:
  case Op::BrCmpL:
  case Op::BrCmpD:
    Uses[NumUses++] = I.A;
    Uses[NumUses++] = I.B;
    break;
  case Op::BrCmpII:
  case Op::BrTrue:
  case Op::BrFalse:
    Uses[NumUses++] = I.A;
    break;
  // returns / call plumbing
  case Op::RetI:
  case Op::RetL:
  case Op::RetD:
    Uses[NumUses++] = I.A;
    break;
  case Op::CallArgI:
  case Op::CallArgD:
    Uses[NumUses++] = I.B;
    break;
  case Op::CallIndirect:
    Uses[NumUses++] = I.A;
    break;
  // no registers
  case Op::Label:
  case Op::Jump:
  case Op::RetVoid:
  case Op::CallArgP:
  case Op::CallArgII:
  case Op::Call:
  case Op::Hint:
  case Op::ProfileInc:
  case Op::Nop:
    break;
  }
}
