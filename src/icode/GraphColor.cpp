//===- icode/GraphColor.cpp - Chaitin-style coloring allocator ------------==//
//
// The paper's baseline allocator (§5.2): "In addition to this register
// allocator, we also provide a Chaitin-style graph-coloring register
// allocator [6] ... it is a good means of evaluating our simpler and faster
// register allocation algorithm."
//
// Interference edges come from exact per-instruction liveness (computed by
// walking each block backwards from LiveOut), so — unlike live intervals —
// the graph sees holes in live ranges. Simplify/select uses Briggs-style
// optimistic coloring; uncolored nodes are assigned stack locations, which
// the emitter handles directly.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace tcc;
using namespace tcc::icode;

namespace {

/// Compact adjacency-set builder: per-node sorted unique neighbor lists.
class InterferenceGraph {
public:
  explicit InterferenceGraph(unsigned N) : Adj(N) {}

  void addEdge(unsigned A, unsigned B) {
    if (A == B)
      return;
    Adj[A].push_back(B);
    Adj[B].push_back(A);
  }

  void finalize() {
    for (auto &Neighbors : Adj) {
      std::sort(Neighbors.begin(), Neighbors.end());
      Neighbors.erase(std::unique(Neighbors.begin(), Neighbors.end()),
                      Neighbors.end());
    }
  }

  const std::vector<unsigned> &neighbors(unsigned N) const { return Adj[N]; }
  unsigned degree(unsigned N) const {
    return static_cast<unsigned>(Adj[N].size());
  }

private:
  std::vector<std::vector<unsigned>> Adj;
};

} // namespace

Allocation tcc::icode::allocateGraphColor(const ICode &IC, const FlowGraph &FG,
                                          int NumIntRegs, int NumFloatRegs,
                                          SpillHeuristic Spill,
                                          const std::vector<bool> &MustSpill) {
  const std::vector<Instr> &Instrs = IC.instrs();
  const unsigned NumRegs = IC.numRegs();

  Allocation Result;
  Result.Location.assign(NumRegs, Allocation::Unused);

  // Occurrence mask + spill weights (10^loop-depth per occurrence).
  std::vector<bool> Occurs(NumRegs, false);
  std::vector<std::uint64_t> Weight(NumRegs, 0);
  {
    std::uint64_t HintWeight = 1;
    int Depth = 0;
    for (const Instr &In : Instrs) {
      if (In.Opcode == Op::Hint) {
        Depth = std::max(0, Depth + In.A);
        HintWeight = 1;
        for (int D = 0; D < Depth && D < 6; ++D)
          HintWeight *= 10;
        continue;
      }
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(In, Defs, ND, Uses, NU);
      for (unsigned U = 0; U < NU; ++U) {
        Occurs[static_cast<unsigned>(Uses[U])] = true;
        Weight[static_cast<unsigned>(Uses[U])] += HintWeight;
      }
      for (unsigned D = 0; D < ND; ++D) {
        Occurs[static_cast<unsigned>(Defs[D])] = true;
        Weight[static_cast<unsigned>(Defs[D])] += HintWeight;
      }
    }
  }

  // Build interference from exact liveness: at each definition point, the
  // defined register interferes with everything currently live in the same
  // register class.
  InterferenceGraph Graph(NumRegs);
  BitVector Live(NumRegs);
  for (const BasicBlock &BB : FG.blocks()) {
    Live = BB.LiveOut;
    for (std::int32_t I = BB.End; I-- > BB.Begin;) {
      const Instr &In = Instrs[static_cast<std::size_t>(I)];
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(In, Defs, ND, Uses, NU);
      for (unsigned D = 0; D < ND; ++D) {
        auto DefR = static_cast<unsigned>(Defs[D]);
        Live.forEach([&](unsigned L) {
          if (L != DefR && IC.isFloatReg(static_cast<VReg>(L)) ==
                               IC.isFloatReg(static_cast<VReg>(DefR)))
            Graph.addEdge(DefR, L);
        });
        Live.clear(DefR);
      }
      for (unsigned U = 0; U < NU; ++U)
        Live.set(static_cast<unsigned>(Uses[U]));
    }
  }
  Graph.finalize();

  // Simplify: repeatedly remove trivially colorable nodes; when stuck,
  // optimistically push a spill candidate (Briggs).
  std::vector<unsigned> CurDegree(NumRegs), Stack;
  std::vector<bool> Removed(NumRegs, false);
  unsigned NumNodes = 0;
  for (unsigned R = 0; R < NumRegs; ++R)
    CurDegree[R] = Graph.degree(R);
  for (unsigned R = 0; R < NumRegs; ++R) {
    if (!Occurs[R]) {
      Removed[R] = true;
      continue;
    }
    if (!MustSpill.empty() && MustSpill[R]) {
      // Caller-saved class crossing a call: straight to memory, and its
      // neighbors no longer see it.
      Removed[R] = true;
      Result.Location[R] = Allocation::Spilled;
      ++Result.NumSpilled;
      for (unsigned N : Graph.neighbors(R))
        --CurDegree[N];
      continue;
    }
    ++NumNodes;
  }
  Stack.reserve(NumNodes);

  auto AvailFor = [&](unsigned R) {
    return IC.isFloatReg(static_cast<VReg>(R)) ? NumFloatRegs : NumIntRegs;
  };

  unsigned RemainingNodes = NumNodes;
  while (RemainingNodes > 0) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (unsigned R = 0; R < NumRegs; ++R) {
        if (Removed[R] ||
            CurDegree[R] >= static_cast<unsigned>(AvailFor(R)))
          continue;
        Removed[R] = true;
        Stack.push_back(R);
        --RemainingNodes;
        for (unsigned N : Graph.neighbors(R))
          if (!Removed[N])
            --CurDegree[N];
        Progress = true;
      }
    }
    if (RemainingNodes == 0)
      break;
    // Stuck: pick a spill candidate. Chaitin picks minimal cost/degree;
    // under the LongestInterval-style heuristic we approximate cost by the
    // occurrence weight alone.
    unsigned Candidate = ~0u;
    double BestScore = 0;
    for (unsigned R = 0; R < NumRegs; ++R) {
      if (Removed[R])
        continue;
      double Cost = static_cast<double>(Weight[R]) + 1.0;
      double Score = (Spill == SpillHeuristic::LowestWeight)
                         ? Cost
                         : Cost / (CurDegree[R] + 1.0);
      if (Candidate == ~0u || Score < BestScore) {
        Candidate = R;
        BestScore = Score;
      }
    }
    Removed[Candidate] = true;
    Stack.push_back(Candidate);
    --RemainingNodes;
    for (unsigned N : Graph.neighbors(Candidate))
      if (!Removed[N])
        --CurDegree[N];
  }

  // Select: pop in reverse, assigning the lowest color not used by any
  // already-colored neighbor; failures become stack locations.
  while (!Stack.empty()) {
    unsigned R = Stack.back();
    Stack.pop_back();
    int Avail = AvailFor(R);
    // Bitmask of colors taken by colored neighbors (pools are <= 32 regs).
    std::uint32_t Taken = 0;
    for (unsigned N : Graph.neighbors(R)) {
      int Loc = Result.Location[N];
      if (Loc >= 0)
        Taken |= 1u << Loc;
    }
    int Color = -1;
    for (int C = 0; C < Avail; ++C)
      if (!(Taken & (1u << C))) {
        Color = C;
        break;
      }
    if (Color >= 0) {
      Result.Location[R] = Color;
    } else {
      Result.Location[R] = Allocation::Spilled;
      ++Result.NumSpilled;
    }
  }
  return Result;
}
