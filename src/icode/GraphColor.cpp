//===- icode/GraphColor.cpp - Chaitin-style coloring allocator ------------==//
//
// The paper's baseline allocator (§5.2): "In addition to this register
// allocator, we also provide a Chaitin-style graph-coloring register
// allocator [6] ... it is a good means of evaluating our simpler and faster
// register allocation algorithm."
//
// Interference edges come from exact per-instruction liveness (computed by
// walking each block backwards from LiveOut), so — unlike live intervals —
// the graph sees holes in live ranges. Simplify/select uses Briggs-style
// optimistic coloring; uncolored nodes are assigned stack locations, which
// the emitter handles directly.
//
// The graph is a packed adjacency bitset matrix in the ICode's arena — the
// same uint64_t-word representation liveness uses — so edge insertion is a
// bit set (dedup for free), degree is popcount, and the ablation against
// linear scan compares allocator algorithms rather than container malloc
// traffic.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace tcc;
using namespace tcc::icode;

namespace {

/// Adjacency bitset matrix: row R holds one bit per potential neighbor.
/// NumRegs rows of RowWords uint64_t words, zero-initialized in the arena.
class InterferenceGraph {
public:
  InterferenceGraph(Arena &A, unsigned N)
      : RowWords((N + 63) / 64),
        Bits(A.allocateZeroed<std::uint64_t>(std::size_t(N) * RowWords)) {}

  void addEdge(unsigned A, unsigned B) {
    if (A == B)
      return;
    row(A)[B / 64] |= std::uint64_t(1) << (B % 64);
    row(B)[A / 64] |= std::uint64_t(1) << (A % 64);
  }

  unsigned degree(unsigned N) const {
    const std::uint64_t *R = row(N);
    unsigned D = 0;
    for (unsigned W = 0; W < RowWords; ++W)
      D += static_cast<unsigned>(__builtin_popcountll(R[W]));
    return D;
  }

  /// Calls \p Fn(neighbor) for each neighbor of \p N, ascending.
  template <typename FnT> void forEachNeighbor(unsigned N, FnT Fn) const {
    const std::uint64_t *R = row(N);
    for (unsigned W = 0; W < RowWords; ++W) {
      std::uint64_t Word = R[W];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Fn(W * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

private:
  std::uint64_t *row(unsigned N) { return Bits + std::size_t(N) * RowWords; }
  const std::uint64_t *row(unsigned N) const {
    return Bits + std::size_t(N) * RowWords;
  }

  unsigned RowWords;
  std::uint64_t *Bits;
};

} // namespace

Allocation tcc::icode::allocateGraphColor(const ICode &IC, const FlowGraph &FG,
                                          int NumIntRegs, int NumFloatRegs,
                                          SpillHeuristic Spill,
                                          const std::uint8_t *MustSpill) {
  const auto &Instrs = IC.instrs();
  const unsigned NumRegs = IC.numRegs();
  Arena &A = IC.arena();

  Allocation Result;
  Result.NumRegs = NumRegs;
  Result.Location = A.allocateArray<int>(NumRegs);
  for (unsigned R = 0; R < NumRegs; ++R)
    Result.Location[R] = Allocation::Unused;

  // Occurrence mask + spill weights (10^loop-depth per occurrence).
  auto *Occurs = A.allocateZeroed<std::uint8_t>(NumRegs);
  auto *Weight = A.allocateZeroed<std::uint64_t>(NumRegs);
  {
    std::uint64_t HintWeight = 1;
    int Depth = 0;
    for (const Instr &In : Instrs) {
      if (In.Opcode == Op::Hint) {
        Depth = std::max(0, Depth + In.A);
        HintWeight = 1;
        for (int D = 0; D < Depth && D < 6; ++D)
          HintWeight *= 10;
        continue;
      }
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(In, Defs, ND, Uses, NU);
      for (unsigned U = 0; U < NU; ++U) {
        Occurs[static_cast<unsigned>(Uses[U])] = 1;
        Weight[static_cast<unsigned>(Uses[U])] += HintWeight;
      }
      for (unsigned D = 0; D < ND; ++D) {
        Occurs[static_cast<unsigned>(Defs[D])] = 1;
        Weight[static_cast<unsigned>(Defs[D])] += HintWeight;
      }
    }
  }

  // Build interference from exact liveness: at each definition point, the
  // defined register interferes with everything currently live in the same
  // register class. `Live` reuses the packed-word layout of the liveness
  // sets.
  InterferenceGraph Graph(A, NumRegs);
  const unsigned W = FG.wordsPerSet();
  BitSetRef Live{A.allocateZeroed<std::uint64_t>(W), W};
  for (const BasicBlock &BB : FG.blocks()) {
    Live.copyFrom(BB.LiveOut);
    for (std::int32_t I = BB.End; I-- > BB.Begin;) {
      const Instr &In = Instrs[static_cast<std::size_t>(I)];
      VReg Defs[2], Uses[3];
      unsigned ND, NU;
      ICode::defsUses(In, Defs, ND, Uses, NU);
      for (unsigned D = 0; D < ND; ++D) {
        auto DefR = static_cast<unsigned>(Defs[D]);
        Live.forEach([&](unsigned L) {
          if (L != DefR && IC.isFloatReg(static_cast<VReg>(L)) ==
                               IC.isFloatReg(static_cast<VReg>(DefR)))
            Graph.addEdge(DefR, L);
        });
        Live.clear(DefR);
      }
      for (unsigned U = 0; U < NU; ++U)
        Live.set(static_cast<unsigned>(Uses[U]));
    }
  }

  // Simplify: repeatedly remove trivially colorable nodes; when stuck,
  // optimistically push a spill candidate (Briggs).
  auto *CurDegree = A.allocateArray<unsigned>(NumRegs);
  auto *Stack = A.allocateArray<unsigned>(NumRegs);
  std::size_t StackTop = 0;
  auto *Removed = A.allocateZeroed<std::uint8_t>(NumRegs);
  unsigned NumNodes = 0;
  for (unsigned R = 0; R < NumRegs; ++R)
    CurDegree[R] = Graph.degree(R);
  for (unsigned R = 0; R < NumRegs; ++R) {
    if (!Occurs[R]) {
      Removed[R] = 1;
      continue;
    }
    if (MustSpill && MustSpill[R]) {
      // Caller-saved class crossing a call: straight to memory, and its
      // neighbors no longer see it.
      Removed[R] = 1;
      Result.Location[R] = Allocation::Spilled;
      ++Result.NumSpilled;
      Graph.forEachNeighbor(R, [&](unsigned N) { --CurDegree[N]; });
      continue;
    }
    ++NumNodes;
  }

  auto AvailFor = [&](unsigned R) {
    return IC.isFloatReg(static_cast<VReg>(R)) ? NumFloatRegs : NumIntRegs;
  };

  unsigned RemainingNodes = NumNodes;
  while (RemainingNodes > 0) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (unsigned R = 0; R < NumRegs; ++R) {
        if (Removed[R] ||
            CurDegree[R] >= static_cast<unsigned>(AvailFor(R)))
          continue;
        Removed[R] = 1;
        Stack[StackTop++] = R;
        --RemainingNodes;
        Graph.forEachNeighbor(R, [&](unsigned N) {
          if (!Removed[N])
            --CurDegree[N];
        });
        Progress = true;
      }
    }
    if (RemainingNodes == 0)
      break;
    // Stuck: pick a spill candidate. Chaitin picks minimal cost/degree;
    // under the LongestInterval-style heuristic we approximate cost by the
    // occurrence weight alone.
    unsigned Candidate = ~0u;
    double BestScore = 0;
    for (unsigned R = 0; R < NumRegs; ++R) {
      if (Removed[R])
        continue;
      double Cost = static_cast<double>(Weight[R]) + 1.0;
      double Score = (Spill == SpillHeuristic::LowestWeight)
                         ? Cost
                         : Cost / (CurDegree[R] + 1.0);
      if (Candidate == ~0u || Score < BestScore) {
        Candidate = R;
        BestScore = Score;
      }
    }
    Removed[Candidate] = 1;
    Stack[StackTop++] = Candidate;
    --RemainingNodes;
    Graph.forEachNeighbor(Candidate, [&](unsigned N) {
      if (!Removed[N])
        --CurDegree[N];
    });
  }

  // Select: pop in reverse, assigning the lowest color not used by any
  // already-colored neighbor; failures become stack locations.
  while (StackTop > 0) {
    unsigned R = Stack[--StackTop];
    int Avail = AvailFor(R);
    // Bitmask of colors taken by colored neighbors (pools are <= 32 regs).
    std::uint32_t Taken = 0;
    Graph.forEachNeighbor(R, [&](unsigned N) {
      int Loc = Result.Location[N];
      if (Loc >= 0)
        Taken |= 1u << Loc;
    });
    int Color = -1;
    for (int C = 0; C < Avail; ++C)
      if (!(Taken & (1u << C))) {
        Color = C;
        break;
      }
    if (Color >= 0) {
      Result.Location[R] = Color;
    } else {
      Result.Location[R] = Allocation::Spilled;
      ++Result.NumSpilled;
    }
  }
  return Result;
}
