//===- icode/LinearScan.cpp - Fast linear-scan register allocation --------==//
//
// Figure 3 of the paper — the original publication of linear scan:
//
//   GREEDY-REGISTER-ALLOCATION
//     active <- {}
//     foreach live interval i, from last to first
//       EXPIRE-OLD-INTERVALS(i)
//       if length(active) == R then
//         r <- SPILL-LONGEST-INTERVAL(i)
//       else
//         r <- a register from the pool of free registers
//       if r is a valid register then
//         register[i] <- r; add i to active, sorted by start point
//       else
//         location[i] <- new stack location
//
// Intervals arrive sorted by increasing end point and are traversed in
// reverse. `active` is kept sorted by increasing start point, so spilling
// the longest (earliest-starting) interval removes the first element, and
// expiring dead intervals is a short search backwards from the end.
// Asymptotic cost O(I * R).
//
// `active` can never hold more entries than the register class has physical
// registers, so it is a fixed in-object array — the scan allocates nothing
// but the result's Location table (from the ICode's arena).
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace tcc;
using namespace tcc::icode;

namespace {

/// One register class's scan state. The active list and free stack are
/// fixed arrays: both are bounded by the physical register count, which the
/// VCODE layer caps well below MaxPhysRegs.
class ScanState {
public:
  /// Upper bound on physical registers per class (the coloring bitmask and
  /// the VCODE pools assume <= 32).
  static constexpr int MaxPhysRegs = 32;

  ScanState(int NumRegs, SpillHeuristic Spill, Allocation &Result)
      : Spill(Spill), Result(Result) {
    assert(NumRegs <= MaxPhysRegs && "register pool exceeds fixed bound");
    for (int R = NumRegs - 1; R >= 0; --R)
      FreeRegs[NumFree++] = R;
    NumPhysRegs = NumRegs;
  }

  void process(const Interval &I) {
    expireOldIntervals(I);
    int R;
    if (NumActive == NumPhysRegs)
      R = spillVictim(I);
    else
      R = FreeRegs[--NumFree];
    if (R >= 0) {
      Result.Location[static_cast<std::size_t>(I.Reg)] = R;
      addActive(I, R);
    } else {
      Result.Location[static_cast<std::size_t>(I.Reg)] = Allocation::Spilled;
      ++Result.NumSpilled;
    }
  }

private:
  struct ActiveEntry {
    Interval IV;
    int Reg;
  };

  void addActive(const Interval &I, int R) {
    // Insert keeping `active` sorted by increasing start point; scanning
    // backwards touches few elements in practice (paper §5.2).
    int At = NumActive;
    while (At > 0 && Active[At - 1].IV.Start > I.Start) {
      Active[At] = Active[At - 1];
      --At;
    }
    Active[At] = ActiveEntry{I, R};
    ++NumActive;
  }

  /// Removes active intervals that start strictly after I's end point —
  /// they cannot overlap I or anything processed later.
  void expireOldIntervals(const Interval &I) {
    while (NumActive > 0 && Active[NumActive - 1].IV.Start > I.End) {
      FreeRegs[NumFree++] = Active[NumActive - 1].Reg;
      --NumActive;
    }
  }

  /// Decides whether to evict an active interval for I. Returns the freed
  /// register, or -1 meaning "spill I itself".
  int spillVictim(const Interval &I) {
    int VictimIdx = 0;
    bool VictimBeatsI;
    if (Spill == SpillHeuristic::LongestInterval) {
      // The longest interval is the earliest-starting one: active.front().
      VictimBeatsI = Active[0].IV.Start < I.Start;
    } else {
      // Ablation heuristic: evict the least-used interval per loop hints.
      std::uint64_t Best = ~0ull;
      for (int K = 0; K < NumActive; ++K)
        if (Active[K].IV.Weight < Best) {
          Best = Active[K].IV.Weight;
          VictimIdx = K;
        }
      VictimBeatsI = Best < I.Weight;
    }
    if (!VictimBeatsI)
      return -1;
    int R = Active[VictimIdx].Reg;
    Result.Location[static_cast<std::size_t>(Active[VictimIdx].IV.Reg)] =
        Allocation::Spilled;
    ++Result.NumSpilled;
    for (int K = VictimIdx; K + 1 < NumActive; ++K)
      Active[K] = Active[K + 1];
    --NumActive;
    return R;
  }

  SpillHeuristic Spill;
  Allocation &Result;
  ActiveEntry Active[MaxPhysRegs];
  int NumActive = 0;
  int FreeRegs[MaxPhysRegs];
  int NumFree = 0;
  int NumPhysRegs;
};

} // namespace

Allocation
tcc::icode::allocateLinearScan(const ICode &IC,
                               const ArenaVector<Interval> &Intervals,
                               int NumIntRegs, int NumFloatRegs,
                               SpillHeuristic Spill,
                               const std::uint8_t *MustSpill) {
  Allocation Result;
  Result.NumRegs = IC.numRegs();
  Result.Location = IC.arena().allocateArray<int>(Result.NumRegs);
  for (unsigned R = 0; R < Result.NumRegs; ++R)
    Result.Location[R] = Allocation::Unused;

  assert(std::is_sorted(Intervals.begin(), Intervals.end(),
                        [](const Interval &A, const Interval &B) {
                          return A.End < B.End;
                        }) &&
         "intervals must arrive sorted by end point");

  ScanState IntState(NumIntRegs, Spill, Result);
  ScanState FloatState(NumFloatRegs, Spill, Result);
  for (std::size_t K = Intervals.size(); K-- > 0;) {
    const Interval &I = Intervals[K];
    if (MustSpill && MustSpill[static_cast<std::size_t>(I.Reg)]) {
      // Caller-saved register class crossing a call: straight to memory.
      Result.Location[static_cast<std::size_t>(I.Reg)] = Allocation::Spilled;
      ++Result.NumSpilled;
      continue;
    }
    (I.IsFloat ? FloatState : IntState).process(I);
  }
  return Result;
}

const std::uint8_t *tcc::icode::computeMustSpill(const ICode &IC,
                                                 const Interval *Intervals,
                                                 std::size_t NumIntervals) {
  const auto &Instrs = IC.instrs();
  Arena &A = IC.arena();

  auto *CallSites = A.allocateArray<std::int32_t>(Instrs.size());
  std::size_t NumCalls = 0;
  for (std::size_t I = 0, E = Instrs.size(); I != E; ++I)
    if (Instrs[I].Opcode == Op::Call || Instrs[I].Opcode == Op::CallIndirect)
      CallSites[NumCalls++] = static_cast<std::int32_t>(I);
  if (NumCalls == 0)
    return nullptr; // No calls: nothing is forced to memory.

  auto *Result = A.allocateZeroed<std::uint8_t>(IC.numRegs());
  for (std::size_t K = 0; K < NumIntervals; ++K) {
    const Interval &IV = Intervals[K];
    if (!IV.IsFloat)
      continue; // The integer pool is callee-saved.
    for (std::size_t C = 0; C < NumCalls; ++C)
      if (CallSites[C] > IV.Start && CallSites[C] < IV.End) {
        Result[static_cast<std::size_t>(IV.Reg)] = 1;
        break;
      }
  }
  return Result;
}
