//===- icode/LinearScan.cpp - Fast linear-scan register allocation --------==//
//
// Figure 3 of the paper — the original publication of linear scan:
//
//   GREEDY-REGISTER-ALLOCATION
//     active <- {}
//     foreach live interval i, from last to first
//       EXPIRE-OLD-INTERVALS(i)
//       if length(active) == R then
//         r <- SPILL-LONGEST-INTERVAL(i)
//       else
//         r <- a register from the pool of free registers
//       if r is a valid register then
//         register[i] <- r; add i to active, sorted by start point
//       else
//         location[i] <- new stack location
//
// Intervals arrive sorted by increasing end point and are traversed in
// reverse. `active` is kept sorted by increasing start point, so spilling
// the longest (earliest-starting) interval removes the first element, and
// expiring dead intervals is a short search backwards from the end.
// Asymptotic cost O(I * R).
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace tcc;
using namespace tcc::icode;

namespace {

/// One register class's scan state.
class ScanState {
public:
  ScanState(int NumRegs, SpillHeuristic Spill, Allocation &Result)
      : Spill(Spill), Result(Result) {
    for (int R = NumRegs - 1; R >= 0; --R)
      FreeRegs.push_back(R);
    NumPhysRegs = NumRegs;
  }

  void process(const Interval &I) {
    expireOldIntervals(I);
    int R;
    if (static_cast<int>(Active.size()) == NumPhysRegs)
      R = spillVictim(I);
    else {
      R = FreeRegs.back();
      FreeRegs.pop_back();
    }
    if (R >= 0) {
      Result.Location[static_cast<std::size_t>(I.Reg)] = R;
      addActive(I, R);
    } else {
      Result.Location[static_cast<std::size_t>(I.Reg)] = Allocation::Spilled;
      ++Result.NumSpilled;
    }
  }

private:
  struct ActiveEntry {
    Interval IV;
    int Reg;
  };

  void addActive(const Interval &I, int R) {
    // Insert keeping `active` sorted by increasing start point; scanning
    // backwards touches few elements in practice (paper §5.2).
    auto It = Active.end();
    while (It != Active.begin() && (It - 1)->IV.Start > I.Start)
      --It;
    Active.insert(It, ActiveEntry{I, R});
  }

  /// Removes active intervals that start strictly after I's end point —
  /// they cannot overlap I or anything processed later.
  void expireOldIntervals(const Interval &I) {
    while (!Active.empty() && Active.back().IV.Start > I.End) {
      FreeRegs.push_back(Active.back().Reg);
      Active.pop_back();
    }
  }

  /// Decides whether to evict an active interval for I. Returns the freed
  /// register, or -1 meaning "spill I itself".
  int spillVictim(const Interval &I) {
    std::size_t VictimIdx = 0;
    bool VictimBeatsI;
    if (Spill == SpillHeuristic::LongestInterval) {
      // The longest interval is the earliest-starting one: active.front().
      VictimBeatsI = Active.front().IV.Start < I.Start;
    } else {
      // Ablation heuristic: evict the least-used interval per loop hints.
      std::uint64_t Best = ~0ull;
      for (std::size_t K = 0; K < Active.size(); ++K)
        if (Active[K].IV.Weight < Best) {
          Best = Active[K].IV.Weight;
          VictimIdx = K;
        }
      VictimBeatsI = Best < I.Weight;
    }
    if (!VictimBeatsI)
      return -1;
    int R = Active[VictimIdx].Reg;
    Result.Location[static_cast<std::size_t>(Active[VictimIdx].IV.Reg)] =
        Allocation::Spilled;
    ++Result.NumSpilled;
    Active.erase(Active.begin() + static_cast<std::ptrdiff_t>(VictimIdx));
    return R;
  }

  SpillHeuristic Spill;
  Allocation &Result;
  std::vector<ActiveEntry> Active;
  std::vector<int> FreeRegs;
  int NumPhysRegs;
};

} // namespace

Allocation tcc::icode::allocateLinearScan(const ICode &IC,
                                          std::vector<Interval> Intervals,
                                          int NumIntRegs, int NumFloatRegs,
                                          SpillHeuristic Spill,
                                          const std::vector<bool> &MustSpill) {
  Allocation Result;
  Result.Location.assign(IC.numRegs(), Allocation::Unused);

  assert(std::is_sorted(Intervals.begin(), Intervals.end(),
                        [](const Interval &A, const Interval &B) {
                          return A.End < B.End;
                        }) &&
         "intervals must arrive sorted by end point");

  ScanState IntState(NumIntRegs, Spill, Result);
  ScanState FloatState(NumFloatRegs, Spill, Result);
  for (std::size_t K = Intervals.size(); K-- > 0;) {
    const Interval &I = Intervals[K];
    if (!MustSpill.empty() && MustSpill[static_cast<std::size_t>(I.Reg)]) {
      // Caller-saved register class crossing a call: straight to memory.
      Result.Location[static_cast<std::size_t>(I.Reg)] = Allocation::Spilled;
      ++Result.NumSpilled;
      continue;
    }
    (I.IsFloat ? FloatState : IntState).process(I);
  }
  return Result;
}

std::vector<bool>
tcc::icode::computeMustSpill(const ICode &IC,
                             const std::vector<Interval> &Intervals) {
  std::vector<bool> Result(IC.numRegs(), false);
  const std::vector<Instr> &Instrs = IC.instrs();
  std::vector<std::int32_t> CallSites;
  for (std::size_t I = 0, E = Instrs.size(); I != E; ++I)
    if (Instrs[I].Opcode == Op::Call || Instrs[I].Opcode == Op::CallIndirect)
      CallSites.push_back(static_cast<std::int32_t>(I));
  if (CallSites.empty())
    return Result;
  for (const Interval &IV : Intervals) {
    if (!IV.IsFloat)
      continue; // The integer pool is callee-saved.
    for (std::int32_t C : CallSites)
      if (C > IV.Start && C < IV.End) {
        Result[static_cast<std::size_t>(IV.Reg)] = true;
        break;
      }
  }
  return Result;
}
