//===- persist/Snapshot.cpp - Persistent cross-process code cache ---------==//

#include "persist/Snapshot.h"

#include "core/Nodes.h"
#include "observability/Metrics.h"
#include "observability/Names.h"
#include "observability/Profile.h"
#include "support/Env.h"
#include "support/Fingerprint.h"
#include "support/Hash.h"
#include "support/Timing.h"
#include "verify/Verify.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <unordered_map>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tcc;
using namespace tcc::persist;

namespace {

// ---------------------------------------------------------------------------
// Wire format. All integers little-endian (x86-64 only — the code bytes are
// ISA-specific anyway); all multi-byte fields accessed via memcpy, so record
// boundaries need no alignment.
//
//   file      := fileHeader record*
//   fileHeader:= "TKSNAP02" u64 buildFingerprint                  (16 bytes)
//   record    := recordHeader key refs relocs code
//   recordHeader (48 bytes):
//     u32 Magic ("TKSR")   u32 TotalLen (whole record)
//     u64 KeyHash          u64 Checksum (hashBytes over everything
//                                        from KeyLen to the record end —
//                                        the section lengths, instr count,
//                                        and save timestamp are covered)
//     u32 KeyLen  u32 CodeLen  u32 NumRelocs  u32 NumRefs
//     u32 MachineInstrs    u32 SavedAt (unix seconds; TTL expiry)
//   ref       := u32 Kind  u64 Addr                               (12 bytes)
//   reloc     := u32 Offset u32 Kind u32 RefOrdinal               (12 bytes)
//
// A reloc's RefOrdinal indexes the record's ref table — and, equivalently,
// the loader's freshly built PersistKey::Refs, which lists the *current*
// process's addresses in the same canonical first-occurrence order. Profile
// relocs carry the sentinel ordinal: their target (the counter) is created
// at load time, not captured in the key.
// ---------------------------------------------------------------------------

constexpr char FileMagic[8] = {'T', 'K', 'S', 'N', 'A', 'P', '0', '2'};
constexpr std::size_t FileHeaderLen = 16;
constexpr std::uint32_t RecordMagic = 0x52534B54u; // "TKSR"
constexpr std::size_t RecordHeaderLen = 48;
constexpr std::size_t RefLen = 12;
constexpr std::size_t RelocLen = 12;
constexpr std::uint32_t ProfileOrdinal = 0xffffffffu;

// Record-header field offsets.
enum : std::size_t {
  OffMagic = 0,
  OffTotalLen = 4,
  OffKeyHash = 8,
  OffChecksum = 16,
  OffKeyLen = 24,
  OffCodeLen = 28,
  OffNumRelocs = 32,
  OffNumRefs = 36,
  OffMachineInstrs = 40,
  OffSavedAt = 44,
};

/// First checksum-covered byte. The hash runs from the section-length words
/// to the record end, so a flipped bit in KeyLen/CodeLen/NumRelocs/NumRefs/
/// MachineInstrs/SavedAt — not just the payload — is a checksum miss. The
/// fields before it are self-checking: Magic and TotalLen structurally, the
/// checksum by definition, KeyHash by the byte-exact key compare at probe.
constexpr std::size_t ChecksumFrom = OffKeyLen;

std::uint32_t rd32(const std::uint8_t *P) {
  std::uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

std::uint64_t rd64(const std::uint8_t *P) {
  std::uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

void push32(std::vector<std::uint8_t> &B, std::uint32_t V) {
  std::uint8_t Tmp[4];
  std::memcpy(Tmp, &V, 4);
  B.insert(B.end(), Tmp, Tmp + 4);
}

void push64(std::vector<std::uint8_t> &B, std::uint64_t V) {
  std::uint8_t Tmp[8];
  std::memcpy(Tmp, &V, 8);
  B.insert(B.end(), Tmp, Tmp + 8);
}

/// Validates one record at \p P with \p Avail bytes to the end of file.
/// Returns the record's total length, or 0 when invalid (torn tail,
/// corruption). Checksum covers everything after the header, so a crash at
/// any point mid-append is caught.
std::size_t validateRecord(const std::uint8_t *P, std::size_t Avail) {
  if (Avail < RecordHeaderLen)
    return 0;
  if (rd32(P + OffMagic) != RecordMagic)
    return 0;
  std::size_t Total = rd32(P + OffTotalLen);
  if (Total < RecordHeaderLen || Total > Avail)
    return 0;
  std::size_t KeyLen = rd32(P + OffKeyLen);
  std::size_t CodeLen = rd32(P + OffCodeLen);
  std::size_t NumRelocs = rd32(P + OffNumRelocs);
  std::size_t NumRefs = rd32(P + OffNumRefs);
  // Overflow-safe: every section length is a u32, the sum fits u64.
  std::uint64_t Want = static_cast<std::uint64_t>(RecordHeaderLen) + KeyLen +
                       NumRefs * RefLen + NumRelocs * RelocLen + CodeLen;
  if (Want != Total)
    return 0;
  if (support::hashBytes(P + ChecksumFrom, Total - ChecksumFrom) !=
      rd64(P + OffChecksum))
    return 0;
  return Total;
}

/// Section accessors over a validated record.
const std::uint8_t *recKey(const std::uint8_t *P) {
  return P + RecordHeaderLen;
}
const std::uint8_t *recRefs(const std::uint8_t *P) {
  return recKey(P) + rd32(P + OffKeyLen);
}
const std::uint8_t *recRelocs(const std::uint8_t *P) {
  return recRefs(P) + rd32(P + OffNumRefs) * RefLen;
}
const std::uint8_t *recCode(const std::uint8_t *P) {
  return recRelocs(P) + rd32(P + OffNumRelocs) * RelocLen;
}

/// Process-wide cumulative mirrors in the metrics registry (the counters
/// tickc-report renders). Per-instance mirrors live in SnapshotStats.
struct SnapMetrics {
  obs::Counter &Hits, &Misses, &Rejects, &Saves, &Unportable, &Compactions,
      &Evictions, &Expired;
  obs::Histogram &Load;
  static SnapMetrics &get() {
    namespace N = obs::names;
    auto &R = obs::MetricsRegistry::global();
    static SnapMetrics M{R.counter(N::SnapshotHits),
                         R.counter(N::SnapshotMisses),
                         R.counter(N::SnapshotRejects),
                         R.counter(N::SnapshotSaves),
                         R.counter(N::SnapshotUnportable),
                         R.counter(N::SnapshotCompactions),
                         R.counter(N::SnapshotEvictions),
                         R.counter(N::SnapshotExpired),
                         R.histogram(N::HistSnapshotLoad)};
    return M;
  }
};

/// Opens + exclusively flocks \p Path, re-checking that the locked fd still
/// names the path (a concurrent opener's compaction may rename a fresh file
/// over it between our open and flock — retry against the new inode).
int lockedOpen(const std::string &Path) {
  for (int Attempt = 0; Attempt < 16; ++Attempt) {
    int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (Fd < 0)
      return -1;
    if (::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      return -1;
    }
    struct stat FdSt, PathSt;
    if (::fstat(Fd, &FdSt) == 0 && ::stat(Path.c_str(), &PathSt) == 0 &&
        FdSt.st_ino == PathSt.st_ino && FdSt.st_dev == PathSt.st_dev)
      return Fd;
    ::close(Fd); // Releases the stale lock; try the new inode.
  }
  return -1;
}

/// write() until done; false on any error (caller treats the append as
/// torn — the next open's scan truncates it).
bool writeAll(int Fd, const std::uint8_t *P, std::size_t N) {
  while (N) {
    ssize_t W = ::write(Fd, P, N);
    if (W <= 0)
      return false;
    P += static_cast<std::size_t>(W);
    N -= static_cast<std::size_t>(W);
  }
  return true;
}

} // namespace

std::unique_ptr<SnapshotCache> SnapshotCache::open(const std::string &Dir,
                                                   std::size_t CompactThreshold,
                                                   std::size_t BudgetBytes,
                                                   std::uint64_t TtlSeconds) {
  if (Dir.empty())
    return nullptr;
  auto SC = std::unique_ptr<SnapshotCache>(new SnapshotCache());
  SC->Budget = BudgetBytes;
  SC->Ttl = TtlSeconds;
  if (!SC->openFile(Dir + "/tickc.snapshot", CompactThreshold))
    return nullptr;
  return SC;
}

std::unique_ptr<SnapshotCache> SnapshotCache::openFromEnv() {
  const char *Dir = std::getenv("TICKC_SNAPSHOT_DIR");
  if (!Dir || !*Dir)
    return nullptr;
  std::size_t Compact = static_cast<std::size_t>(
      tcc::envUInt64("TICKC_SNAPSHOT_COMPACT", 1u << 20));
  std::size_t Budget =
      static_cast<std::size_t>(tcc::envUInt64("TICKC_SNAPSHOT_BUDGET", 0));
  std::uint64_t Ttl = tcc::envUInt64("TICKC_SNAPSHOT_TTL", 0);
  return open(Dir, Compact, Budget, Ttl);
}

bool SnapshotCache::expired(const std::uint8_t *Rec) const {
  if (!Ttl)
    return false;
  std::uint64_t SavedAt = rd32(Rec + OffSavedAt);
  if (!SavedAt) // Pre-TTL record with no timestamp: never expires.
    return false;
  return static_cast<std::uint64_t>(::time(nullptr)) > SavedAt + Ttl;
}

SnapshotCache::~SnapshotCache() {
  if (Map)
    ::munmap(const_cast<std::uint8_t *>(Map), MapLen);
  if (Fd >= 0)
    ::close(Fd);
}

bool SnapshotCache::openFile(const std::string &FilePath,
                             std::size_t CompactThreshold) {
  Path = FilePath;
  // At most two passes: the second only after this process compacted (the
  // rewritten file is all-live, so the dead-byte check cannot re-fire).
  for (bool Compacted = false;; Compacted = true) {
    Fd = lockedOpen(Path);
    if (Fd < 0)
      return false;

    struct stat St;
    if (::fstat(Fd, &St) != 0) {
      ::close(Fd);
      Fd = -1;
      return false;
    }
    std::size_t FileLen = static_cast<std::size_t>(St.st_size);

    // File header: create, accept, or (mismatched build) reset. A mismatch
    // is a counted rejection of the whole old file, never an abort — the
    // snapshot was written by a build whose code this process must not run.
    std::uint8_t Header[FileHeaderLen];
    bool NeedFreshHeader = FileLen < FileHeaderLen;
    if (!NeedFreshHeader) {
      if (::pread(Fd, Header, FileHeaderLen, 0) !=
          static_cast<ssize_t>(FileHeaderLen)) {
        ::close(Fd);
        Fd = -1;
        return false;
      }
      if (std::memcmp(Header, FileMagic, 8) != 0 ||
          rd64(Header + 8) != support::buildFingerprint()) {
        SnapMetrics::get().Rejects.inc();
        {
          support::MutexLock G(StatsM);
          ++Stats.Rejects;
        }
        NeedFreshHeader = true;
      }
    }
    if (NeedFreshHeader) {
      if (::ftruncate(Fd, 0) != 0) {
        ::close(Fd);
        Fd = -1;
        return false;
      }
      std::memcpy(Header, FileMagic, 8);
      std::uint64_t FP = support::buildFingerprint();
      std::memcpy(Header + 8, &FP, 8);
      if (::pwrite(Fd, Header, FileHeaderLen, 0) !=
          static_cast<ssize_t>(FileHeaderLen)) {
        ::close(Fd);
        Fd = -1;
        return false;
      }
      FileLen = FileHeaderLen;
    }

    // Map the whole file once for the validation scan (records are read
    // straight out of this mapping afterwards).
    const std::uint8_t *M8 = nullptr;
    if (FileLen > FileHeaderLen) {
      void *M = ::mmap(nullptr, FileLen, PROT_READ, MAP_PRIVATE, Fd, 0);
      if (M == MAP_FAILED) {
        ::close(Fd);
        Fd = -1;
        return false;
      }
      M8 = static_cast<const std::uint8_t *>(M);
    }

    // WAL recovery scan: walk record to record; the first invalid byte
    // ends the valid prefix (a crash mid-append tore the tail) and the
    // file is truncated back to it.
    std::vector<const std::uint8_t *> Records;
    std::size_t End = FileHeaderLen;
    while (M8 && End < FileLen) {
      std::size_t Len = validateRecord(M8 + End, FileLen - End);
      if (!Len)
        break;
      Records.push_back(M8 + End);
      End += Len;
    }
    if (End < FileLen)
      ::ftruncate(Fd, static_cast<off_t>(End));

    // Dead-byte accounting: concurrent processes may have appended the same
    // key more than once (benign duplicates). The *last* record per key is
    // live — matching the probe order below is not required for soundness
    // (duplicates are byte-equal in practice), only for the accounting.
    // TTL-expired records are dead outright: never indexed, never kept by a
    // compaction, and their bytes push the dead count toward the rewrite.
    std::unordered_map<std::string, std::size_t> LastByKey;
    for (std::size_t I = 0; I < Records.size(); ++I) {
      const std::uint8_t *R = Records[I];
      if (expired(R))
        continue;
      LastByKey[std::string(reinterpret_cast<const char *>(recKey(R)),
                            rd32(R + OffKeyLen))] = I;
    }
    std::size_t LiveBytes = 0;
    for (const auto &KV : LastByKey)
      LiveBytes += rd32(Records[KV.second] + OffTotalLen);
    std::size_t DeadBytes = (End - FileHeaderLen) - LiveBytes;

    if (!Compacted && ((CompactThreshold && DeadBytes >= CompactThreshold) ||
                       (Budget && End > Budget))) {
      // Compact: rewrite the live set to a temp file and rename it into
      // place. Readers that opened before the rename keep their (complete,
      // consistent) old mapping; appends they make to the old inode are
      // lost, never corrupting — the documented cost of compaction.
      //
      // Live set in append order; under a size budget, evict oldest-first:
      // keep the longest newest suffix that fits (newer records reflect the
      // most recent working set — the same recency bet the in-memory LRU
      // makes).
      std::vector<std::size_t> Keep;
      Keep.reserve(LastByKey.size());
      for (const auto &KV : LastByKey)
        Keep.push_back(KV.second);
      std::sort(Keep.begin(), Keep.end());
      if (Budget) {
        std::size_t Used = FileHeaderLen;
        std::size_t FirstKept = Keep.size();
        for (std::size_t I = Keep.size(); I-- > 0;) {
          std::size_t Len = rd32(Records[Keep[I]] + OffTotalLen);
          if (Used + Len > Budget)
            break;
          Used += Len;
          FirstKept = I;
        }
        if (FirstKept > 0) {
          countEviction(FirstKept);
          Keep.erase(Keep.begin(),
                     Keep.begin() + static_cast<std::ptrdiff_t>(FirstKept));
        }
      }
      std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
      int TFd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                       0644);
      bool Ok = TFd >= 0 && writeAll(TFd, Header, FileHeaderLen);
      for (std::size_t I : Keep) {
        if (!Ok)
          break;
        const std::uint8_t *R = Records[I];
        Ok = writeAll(TFd, R, rd32(R + OffTotalLen));
      }
      Ok = Ok && ::fsync(TFd) == 0 && ::rename(Tmp.c_str(), Path.c_str()) == 0;
      if (TFd >= 0)
        ::close(TFd);
      if (Ok) {
        SnapMetrics::get().Compactions.inc();
        {
          support::MutexLock G(StatsM);
          ++Stats.Compactions;
        }
        if (M8)
          ::munmap(const_cast<std::uint8_t *>(M8), FileLen);
        ::close(Fd); // Releases the old inode's lock.
        Fd = -1;
        continue; // Reopen the compacted file (second and final pass).
      }
      ::unlink(Tmp.c_str()); // Failed compaction: keep the valid old file.
    }

    // Index the valid prefix and keep the mapping + (unlocked) fd. Open
    // runs before the instance is shared, but indexRecord requires the
    // index mutex, so take it (uncontended) for the analysis's sake.
    Map = M8;
    MapLen = M8 ? FileLen : 0;
    {
      support::MutexLock G(M);
      for (const std::uint8_t *R : Records)
        if (!expired(R))
          indexRecord(R);
    }
    ::flock(Fd, LOCK_UN);
    return true;
  }
}

void SnapshotCache::indexRecord(const std::uint8_t *Rec) {
  Index.emplace(rd64(Rec + OffKeyHash), RecordRef{Rec});
}

const std::uint8_t *SnapshotCache::findRecord(const cache::PersistKey &K) const {
  support::MutexLock G(M);
  auto Range = Index.equal_range(K.Hash);
  for (auto It = Range.first; It != Range.second; ++It) {
    const std::uint8_t *R = It->second.Rec;
    if (rd32(R + OffKeyLen) != K.Bytes.size() ||
        rd32(R + OffNumRefs) != K.Refs.size())
      continue;
    if (std::memcmp(recKey(R), K.Bytes.data(), K.Bytes.size()) != 0)
      continue;
    // A record that was fresh at open can age out during a long-lived
    // process: re-checked per probe, counted, treated as absent (so a
    // fresh compile re-saves it with a new timestamp).
    if (expired(R)) {
      SnapMetrics::get().Expired.inc();
      support::MutexLock SG(StatsM);
      ++Stats.Expired;
      continue;
    }
    return R;
  }
  return nullptr;
}

bool SnapshotCache::appendRecord(std::vector<std::uint8_t> &&Bytes) {
  support::MutexLock G(M);
  // Whole-record append under the file lock: concurrent processes
  // interleave records, never bytes. A failure partway leaves a torn tail
  // the next opener's scan truncates.
  if (::flock(Fd, LOCK_EX) != 0)
    return false;
  if (Budget) {
    // The budget gate reads the *current* size under the lock, so it holds
    // against concurrent writer processes too: whoever locks last sees the
    // others' appends. Over budget, the record is dropped (a counted
    // eviction) — the in-memory cache still serves this process.
    struct stat St;
    if (::fstat(Fd, &St) == 0 &&
        static_cast<std::size_t>(St.st_size) + Bytes.size() > Budget) {
      ::flock(Fd, LOCK_UN);
      countEviction();
      return false;
    }
  }
  if (::lseek(Fd, 0, SEEK_END) != static_cast<off_t>(-1))
    writeAll(Fd, Bytes.data(), Bytes.size());
  ::flock(Fd, LOCK_UN);
  // Same-process visibility: the mmap covers only the open-time file, so
  // keep a heap copy of our own append and index that.
  auto Own = std::make_unique<std::uint8_t[]>(Bytes.size());
  std::memcpy(Own.get(), Bytes.data(), Bytes.size());
  indexRecord(Own.get());
  Owned.push_back(std::move(Own));
  return true;
}

void SnapshotCache::countEviction(std::uint64_t N) {
  SnapMetrics::get().Evictions.inc(N);
  support::MutexLock G(StatsM);
  Stats.Evictions += N;
}

core::CompiledFn SnapshotCache::tryLoad(const cache::PersistKey &K,
                                        const core::CompileOptions &Opts) {
  SnapMetrics &GM = SnapMetrics::get();
  if (!K.Cacheable)
    return {};
  std::uint64_t T0 = readCycleCounterBegin();
  const std::uint8_t *R = findRecord(K);
  if (!R) {
    GM.Misses.inc();
    support::MutexLock G(StatsM);
    ++Stats.Misses;
    return {};
  }

  auto Reject = [&]() -> core::CompiledFn {
    GM.Rejects.inc();
    support::MutexLock G(StatsM);
    ++Stats.Rejects;
    return {};
  };

  std::size_t CodeLen = rd32(R + OffCodeLen);
  std::size_t NumRelocs = rd32(R + OffNumRelocs);
  if (!CodeLen)
    return Reject();

  // Copy the stored bytes into a live (still-writable) region.
  PooledRegion Region =
      Opts.Pool ? Opts.Pool->acquireLoaded(recCode(R), CodeLen, Opts.Placement)
                : PooledRegion(nullptr, RegionReleaser{});
  if (!Region) {
    Region = PooledRegion(new CodeRegion(CodeLen, Opts.Placement,
                                         /*DualMap=*/false),
                          RegionReleaser{});
    std::memcpy(Region->base(), recCode(R), CodeLen);
  }
  std::uint8_t *Base = Region->base();

  // A profiled record increments a counter that must live in *this*
  // process: create the entry first so relocation patching can target it.
  std::shared_ptr<obs::ProfileEntry> Prof;
  if (Opts.Profile)
    Prof = obs::ProfileRegistry::global().create(
        Opts.ProfileName ? Opts.ProfileName : "");

  // Re-point every recorded imm64 at this process's addresses. The stored
  // ordinals index K.Refs — the fresh walk's captures in the same canonical
  // order — so old address i maps to current address i by construction.
  const std::uint8_t *RL = recRelocs(R);
  for (std::size_t I = 0; I < NumRelocs; ++I, RL += RelocLen) {
    std::size_t Offset = rd32(RL);
    std::uint32_t Kind = rd32(RL + 4);
    std::uint32_t Ordinal = rd32(RL + 8);
    if (Offset + 8 > CodeLen)
      return Reject();
    std::uint64_t Target;
    if (Kind == static_cast<std::uint32_t>(support::RelocKind::Profile)) {
      if (!Prof)
        return Reject(); // Record/options profile mismatch: stale record.
      Target = reinterpret_cast<std::uint64_t>(&Prof->Invocations);
    } else {
      if (Ordinal >= K.Refs.size())
        return Reject();
      Target = K.Refs[Ordinal].Addr;
    }
    std::memcpy(Base + Offset, &Target, 8);
  }

  // The gate: the flow-sensitive admission verifier runs unconditionally on
  // the *patched* bytes before they can ever execute. It recovers the full
  // CFG, proves stack/callee-saved discipline on all paths by abstract
  // interpretation, and — because the record's reloc table is handed over —
  // confines every indirect call to addresses the loader's own key walk
  // declared. A hostile record with a stray call target, a mid-instruction
  // branch, an unbalanced path, or a reloc aimed at an opcode byte is a
  // counted reject that falls back to a fresh compile.
  std::vector<verify::AdmissionReloc> ARelocs;
  ARelocs.reserve(NumRelocs);
  const std::uint8_t *RL2 = recRelocs(R);
  for (std::size_t I = 0; I < NumRelocs; ++I, RL2 += RelocLen)
    ARelocs.push_back(
        {rd32(RL2), static_cast<std::uint8_t>(rd32(RL2 + 4))});
  std::uint64_t A0 = readCycleCounterBegin();
  verify::AdmissionInputs AI;
  AI.Code = Base;
  AI.Size = CodeLen;
  AI.ProfileCounter = Prof ? &Prof->Invocations : nullptr;
  AI.ExpectProfile = Prof != nullptr;
  AI.Relocs = ARelocs.data();
  AI.NumRelocs = ARelocs.size();
  AI.HaveRelocs = true;
  verify::Result VR = verify::verifyAdmission(AI);
  verify::recordOutcome(verify::Layer::Admit, !VR.ok(),
                        readCycleCounterEnd() - A0);
  if (!VR.ok()) {
    // The render (with CFG + abstract-state dump) is observable without
    // aborting: hostile input must degrade to a recompile, not kill the
    // process. TICKC_ADMIT_LOG names a file to append diagnostics to.
    if (const char *LogPath = std::getenv("TICKC_ADMIT_LOG")) {
      if (std::FILE *LF = std::fopen(LogPath, "a")) {
        std::string Rendered = VR.render();
        std::fwrite(Rendered.data(), 1, Rendered.size(), LF);
        std::fclose(LF);
      }
    }
    return Reject();
  }

  core::LoadedCode L;
  L.Region = std::move(Region);
  L.CodeBytes = CodeLen;
  L.MachineInstrs = rd32(R + OffMachineInstrs);
  L.Prof = std::move(Prof);
  L.SymbolName = Opts.SymbolName ? Opts.SymbolName : Opts.ProfileName;
  core::CompiledFn F = core::adoptLoadedCode(std::move(L));

  GM.Hits.inc();
  GM.Load.record(readCycleCounterEnd() - T0);
  {
    support::MutexLock G(StatsM);
    ++Stats.Hits;
  }
  return F;
}

void SnapshotCache::trySave(const cache::PersistKey &K,
                            const core::CompiledFn &F,
                            const support::RelocTable &Relocs) {
  SnapMetrics &GM = SnapMetrics::get();
  if (!K.Cacheable || !F.valid() || !F.stats().CodeBytes)
    return;

  auto Unportable = [&] {
    GM.Unportable.inc();
    support::MutexLock G(StatsM);
    ++Stats.Unportable;
  };
  if (Relocs.Unportable) {
    // Some captured pointer escaped the movabs imm64 form (constant
    // folding); the reloc table cannot account for every embedded address,
    // so the record would be unsound in another process.
    Unportable();
    return;
  }

  std::size_t CodeLen = F.stats().CodeBytes;

  // Translate each captured slot's absolute address back to its ordinal in
  // the canonical ref list. An address with no ordinal means it entered the
  // code some way the key walk cannot see (e.g. a pointer laundered through
  // a plain long constant) — not persistable, counted, skipped.
  struct WireReloc {
    std::uint32_t Offset, Kind, Ordinal;
  };
  std::vector<WireReloc> Wire;
  Wire.reserve(Relocs.Entries.size());
  for (const support::RelocEntry &E : Relocs.Entries) {
    WireReloc W{E.Offset, static_cast<std::uint32_t>(E.Kind), ProfileOrdinal};
    if (E.Offset + 8 > CodeLen) {
      Unportable();
      return;
    }
    if (E.Kind != support::RelocKind::Profile) {
      std::uint8_t WantKind =
          E.Kind == support::RelocKind::Callee
              ? static_cast<std::uint8_t>(core::ExprKind::Call)
              : static_cast<std::uint8_t>(core::ExprKind::FreeVar);
      std::uint32_t Found = ProfileOrdinal;
      for (std::size_t I = 0; I < K.Refs.size(); ++I)
        if (K.Refs[I].Addr == E.Value && K.Refs[I].Kind == WantKind) {
          Found = static_cast<std::uint32_t>(I);
          break;
        }
      if (Found == ProfileOrdinal) // Kind-blind fallback (API-built args).
        for (std::size_t I = 0; I < K.Refs.size(); ++I)
          if (K.Refs[I].Addr == E.Value) {
            Found = static_cast<std::uint32_t>(I);
            break;
          }
      if (Found == ProfileOrdinal) {
        Unportable();
        return;
      }
      W.Ordinal = Found;
    }
    Wire.push_back(W);
  }

  {
    // Duplicate suppression within this process: the record is already
    // probe-visible (our own append or the open-time file).
    if (findRecord(K))
      return;
  }

  // entry() is the exec alias, which stays readable — the emitted bytes are
  // read back from the live function itself.
  const std::uint8_t *Code = static_cast<const std::uint8_t *>(F.entry());

  std::vector<std::uint8_t> Rec;
  Rec.reserve(RecordHeaderLen + K.Bytes.size() + K.Refs.size() * RefLen +
              Wire.size() * RelocLen + CodeLen);
  push32(Rec, RecordMagic);
  push32(Rec, 0); // TotalLen, fixed up below.
  push64(Rec, K.Hash);
  push64(Rec, 0); // Checksum, fixed up below.
  push32(Rec, static_cast<std::uint32_t>(K.Bytes.size()));
  push32(Rec, static_cast<std::uint32_t>(CodeLen));
  push32(Rec, static_cast<std::uint32_t>(Wire.size()));
  push32(Rec, static_cast<std::uint32_t>(K.Refs.size()));
  push32(Rec, static_cast<std::uint32_t>(F.stats().MachineInstrs));
  push32(Rec, static_cast<std::uint32_t>(::time(nullptr))); // SavedAt.
  Rec.insert(Rec.end(), K.Bytes.begin(), K.Bytes.end());
  for (const cache::ExtRef &Ref : K.Refs) {
    push32(Rec, Ref.Kind);
    push64(Rec, Ref.Addr);
  }
  for (const WireReloc &W : Wire) {
    push32(Rec, W.Offset);
    push32(Rec, W.Kind);
    push32(Rec, W.Ordinal);
  }
  Rec.insert(Rec.end(), Code, Code + CodeLen);

  std::uint32_t Total = static_cast<std::uint32_t>(Rec.size());
  std::memcpy(Rec.data() + OffTotalLen, &Total, 4);
  std::uint64_t Sum =
      support::hashBytes(Rec.data() + ChecksumFrom, Rec.size() - ChecksumFrom);
  std::memcpy(Rec.data() + OffChecksum, &Sum, 8);

  if (!appendRecord(std::move(Rec)))
    return;
  GM.Saves.inc();
  {
    support::MutexLock G(StatsM);
    ++Stats.Saves;
  }
}

SnapshotStats SnapshotCache::stats() const {
  support::MutexLock G(StatsM);
  return Stats;
}

std::size_t SnapshotCache::recordCount() const {
  support::MutexLock G(M);
  return Index.size();
}
