//===- persist/Snapshot.h - Persistent cross-process code cache -*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warm-start snapshots: an on-disk log of finalized compiles keyed by the
/// address-independent PersistKey (cache/SpecKey.h), so a fresh process can
/// reach steady-state cache-hit latency without recompiling anything.
///
/// Format. One file per snapshot directory (TICKC_SNAPSHOT_DIR):
///
///   file header   "TKSNAP02" magic + the build/ISA fingerprint
///                 (support/Fingerprint.h) of the writing build
///   record*       { magic, total length, key hash, payload checksum,
///                   key/code/reloc/ref section lengths, machine-instr
///                   count, save timestamp } followed by the canonical key
///                   bytes, the external-reference table, the relocation
///                   side table (imm64 offsets as ref ordinals), and the
///                   raw code. The checksum covers everything from the
///                   section lengths to the record end.
///
/// Write model (write-ahead-log style). Records are appended whole under an
/// exclusive flock, so concurrent processes interleave records, never
/// bytes. A crash mid-append leaves a torn tail; the next open scans to the
/// last checksum-valid record boundary and truncates the rest. Duplicate
/// records for one key (two processes compiling the same spec) are benign:
/// probes take the first valid match, and when dead bytes exceed
/// TICKC_SNAPSHOT_COMPACT the opener rewrites the live set to a temp file
/// and renames it into place.
///
/// Load safety. A record is executed only after (1) the file fingerprint
/// matched this build, (2) its checksum and section bounds verified, (3)
/// its key bytes compared equal (not just hash-equal), (4) every recorded
/// imm64 slot was re-pointed at this process's addresses, and (5) the
/// patched bytes passed the flow-sensitive admission verifier
/// (verify::verifyAdmission): full CFG recovery over the strict decode,
/// worklist abstract interpretation proving stack-depth balance and
/// callee-saved save/restore on all paths to every ret, frame-pointer
/// integrity, and — against the record's own reloc table — confinement of
/// every indirect call to addresses the loader's key walk declared. Any
/// failure is a counted reject and falls back to compiling. With
/// TICKC_SNAPSHOT_TTL set, records older than the TTL are additionally
/// skipped at probe time and dropped by open-time compaction.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_PERSIST_SNAPSHOT_H
#define TICKC_PERSIST_SNAPSHOT_H

#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "support/Reloc.h"
#include "support/ThreadSafety.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tcc {
namespace persist {

/// Per-instance probe/save accounting (process-wide cumulative mirrors live
/// in obs::MetricsRegistry under the cache.snapshot.* names).
struct SnapshotStats {
  std::uint64_t Hits = 0;        ///< Probes that produced a loaded function.
  std::uint64_t Misses = 0;      ///< Probes with no matching record.
  std::uint64_t Rejects = 0;     ///< Records refused: fingerprint, bounds,
                                 ///< checksum, patch, or audit failure.
  std::uint64_t Saves = 0;       ///< Records appended by this process.
  std::uint64_t Unportable = 0;  ///< Compiles not persisted because a
                                 ///< pointer escaped the imm64 form.
  std::uint64_t Compactions = 0; ///< Open-time rewrites of the live set.
  std::uint64_t Evictions = 0;   ///< Records dropped (oldest-first at open,
                                 ///< or appends refused) to keep the file
                                 ///< under its size budget.
  std::uint64_t Expired = 0;     ///< Probes that matched a record older
                                 ///< than the configured TTL (skipped).
};

/// One open snapshot file: an mmap'd read view of the records present at
/// open, plus an append channel for compiles this process finishes. Safe to
/// use from concurrent compile threads.
class SnapshotCache {
public:
  /// Opens (creating if absent) \p Dir/tickc.snapshot. Recovery, fingerprint
  /// check, and compaction all happen here, under the file lock. Returns
  /// null when the directory is unusable — persistence then simply stays
  /// off. \p CompactThreshold of 0 disables compaction. \p BudgetBytes of 0
  /// leaves the file unbounded; nonzero, an over-budget file is rewritten
  /// at open keeping the newest live records that fit, and appends that
  /// would grow the file past the budget are dropped (both counted as
  /// cache.snapshot.evictions) — the bound long-lived snapshot dirs need.
  /// \p TtlSeconds of 0 disables per-entry expiry; nonzero, records whose
  /// save timestamp is older than the TTL are skipped at probe time
  /// (counted as cache.snapshot.expired) and treated as dead bytes by the
  /// open-time compaction.
  static std::unique_ptr<SnapshotCache> open(const std::string &Dir,
                                             std::size_t CompactThreshold,
                                             std::size_t BudgetBytes = 0,
                                             std::uint64_t TtlSeconds = 0);

  /// open() configured from TICKC_SNAPSHOT_DIR / TICKC_SNAPSHOT_COMPACT
  /// (default 1 MiB of dead bytes) / TICKC_SNAPSHOT_BUDGET (default
  /// unbounded) / TICKC_SNAPSHOT_TTL (seconds, default no expiry); null
  /// when TICKC_SNAPSHOT_DIR is unset.
  static std::unique_ptr<SnapshotCache> openFromEnv();

  ~SnapshotCache();

  SnapshotCache(const SnapshotCache &) = delete;
  SnapshotCache &operator=(const SnapshotCache &) = delete;

  /// Probes for a record matching \p K; on a hit, copies the code into a
  /// region (from \p Opts.Pool when set), re-points every recorded imm64 at
  /// this process's addresses (K.Refs by ordinal; a fresh profile counter
  /// when \p Opts.Profile), byte-audits the result, and adopts it. Returns
  /// an invalid CompiledFn on miss or reject — the caller compiles.
  core::CompiledFn tryLoad(const cache::PersistKey &K,
                           const core::CompileOptions &Opts);

  /// Appends the finished compile \p F under \p K. Counted no-op when the
  /// reloc table is unportable or a recorded address has no ordinal in
  /// K.Refs (nothing wrong — just not representable on disk).
  void trySave(const cache::PersistKey &K, const core::CompiledFn &F,
               const support::RelocTable &Relocs);

  SnapshotStats stats() const;
  const std::string &path() const { return Path; }
  /// Checksum-valid records visible to probes (open-time + own appends).
  std::size_t recordCount() const;

private:
  SnapshotCache() = default;

  /// A validated record, by pointer into the open-time mapping or into an
  /// owned append buffer.
  struct RecordRef {
    const std::uint8_t *Rec = nullptr;
  };

  bool openFile(const std::string &FilePath, std::size_t CompactThreshold);
  /// True when TTL expiry is on and \p Rec's save timestamp has aged out.
  bool expired(const std::uint8_t *Rec) const;
  /// Counts one budget eviction in both the registry and Stats.
  void countEviction(std::uint64_t N = 1);
  void indexRecord(const std::uint8_t *Rec) TICKC_REQUIRES(M);
  const std::uint8_t *findRecord(const cache::PersistKey &K) const;
  /// False when the append was refused (lock failure or budget).
  bool appendRecord(std::vector<std::uint8_t> &&Bytes);

  std::string Path;
  int Fd = -1;
  std::size_t Budget = 0;   ///< Per-file size bound; 0 = unbounded.
  std::uint64_t Ttl = 0;    ///< Per-record lifetime, seconds; 0 = forever.
  const std::uint8_t *Map = nullptr; ///< Read view of the open-time file.
  std::size_t MapLen = 0;

  mutable support::Mutex M;
  std::unordered_multimap<std::uint64_t, RecordRef>
      Index TICKC_GUARDED_BY(M);
  /// Heap copies of records this process appended (stable addresses; the
  /// mmap only covers the file as it was at open).
  std::vector<std::unique_ptr<std::uint8_t[]>> Owned TICKC_GUARDED_BY(M);

  mutable support::Mutex StatsM;
  /// Mutable: findRecord (const, called from the also-const probe path)
  /// counts TTL expiries it skips.
  mutable SnapshotStats Stats TICKC_GUARDED_BY(StatsM);
};

} // namespace persist
} // namespace tcc

#endif // TICKC_PERSIST_SNAPSHOT_H
