//===- cache/SpecKey.h - Structural cache key for cspecs -------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives a structural identity for one instantiation request: a canonical
/// byte fingerprint of the cspec closure tree — node kinds, types,
/// operators, vspec ids, bound run-time constants (`$` values), captured
/// free-variable and callee addresses — plus the Context's vspec table, the
/// return type, and every CompileOptions knob that changes generated code.
///
/// Two instantiation requests with equal SpecKeys produce byte-identical
/// machine code, even when their trees were built by different Contexts:
/// instantiation is a pure function of exactly the facts serialized here.
/// The one exception is `$`-at-instantiation over memory (rtEval of a load
/// or free variable): the embedded immediate depends on what memory holds
/// *when the walk runs*, which no tree fingerprint can capture — such specs
/// are marked not Cacheable and always compile.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_CACHE_SPECKEY_H
#define TICKC_CACHE_SPECKEY_H

#include "core/Compile.h"
#include "core/Context.h"

#include <cstdint>
#include <vector>

namespace tcc {
namespace cache {

/// The memoization key: canonical bytes plus their precomputed hash.
struct SpecKey {
  std::vector<std::uint8_t> Bytes;
  std::uint64_t Hash = 0;
  /// False when the spec's generated code can depend on instantiation-time
  /// memory contents (rtEval over loads); never memoized.
  bool Cacheable = true;

  bool operator==(const SpecKey &O) const {
    return Hash == O.Hash && Bytes == O.Bytes;
  }
};

/// Hasher for unordered containers: the hash is already computed.
struct SpecKeyHash {
  std::size_t operator()(const SpecKey &K) const {
    return static_cast<std::size_t>(K.Hash);
  }
};

/// Fingerprints one instantiation request. Cost is one tree walk — the
/// same order of work as the CGF walk itself, minus all emission.
SpecKey buildSpecKey(const core::Context &Ctx, core::Stmt Body,
                     core::EvalType RetType,
                     const core::CompileOptions &Opts);

/// One canonical external reference of a spec tree, in first-occurrence
/// walk order. Kind is the ExprKind byte (FreeVar or Call) so the same
/// numeric address captured both as data and as a callee never aliases.
struct ExtRef {
  std::uint8_t Kind = 0;
  std::uint64_t Addr = 0;
  bool operator==(const ExtRef &O) const {
    return Kind == O.Kind && Addr == O.Addr;
  }
};

/// Address-independent identity for persistent snapshot records. Canonical
/// bytes are serialized exactly like SpecKey except each captured address
/// is replaced by the ordinal of its first occurrence, with the addresses
/// themselves collected into Refs. Two processes that build the same tree
/// over ASLR-relocated globals therefore produce the same PersistKey bytes
/// with different Refs — the pairing the loader uses to re-point imm64
/// relocation slots (old address at ordinal i → this process's address at
/// ordinal i).
struct PersistKey {
  std::vector<std::uint8_t> Bytes;
  std::uint64_t Hash = 0;
  std::vector<ExtRef> Refs;
  /// Mirrors SpecKey::Cacheable; uncacheable specs are never persisted.
  bool Cacheable = true;
};

/// Builds the address-independent persistence identity (one extra tree
/// walk; only taken on in-memory cache misses when a snapshot is open).
PersistKey buildPersistKey(const core::Context &Ctx, core::Stmt Body,
                           core::EvalType RetType,
                           const core::CompileOptions &Opts);

} // namespace cache
} // namespace tcc

#endif // TICKC_CACHE_SPECKEY_H
