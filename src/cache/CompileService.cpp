//===- cache/CompileService.cpp - Memoized instantiation ------------------==//

#include "cache/CompileService.h"

#include "observability/Trace.h"

using namespace tcc;
using namespace tcc::cache;
using namespace tcc::core;

CompileService::CompileService(ServiceConfig Config)
    : Config(Config), Pool(Config.MaxPooledBytes),
      Cache(Config.Shards, Config.MaxCodeBytes) {}

FnHandle CompileService::getOrCompile(Context &Ctx, Stmt Body,
                                      EvalType RetType, CompileOptions Opts) {
  if (Config.EnablePool && !Opts.Pool)
    Opts.Pool = &Pool;

  if (!Config.EnableCache)
    return std::make_shared<CompiledFn>(
        compileFn(Ctx, Body, RetType, Opts));

  SpecKey K;
  {
    obs::TraceSpan Span(obs::SpanKind::SpecFingerprint);
    K = buildSpecKey(Ctx, Body, RetType, Opts);
  }
  if (!K.Cacheable)
    return std::make_shared<CompiledFn>(
        compileFn(Ctx, Body, RetType, Opts));

  if (FnHandle H = Cache.lookup(K))
    return H;
  return Cache.insert(K, compileFn(Ctx, Body, RetType, Opts));
}

FnHandle CompileService::lookup(const SpecKey &K) {
  if (!Config.EnableCache || !K.Cacheable)
    return nullptr;
  return Cache.lookup(K);
}

CompileService &CompileService::instance() {
  static CompileService S;
  return S;
}
