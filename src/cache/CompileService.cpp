//===- cache/CompileService.cpp - Memoized instantiation ------------------==//

#include "cache/CompileService.h"

#include "observability/Metrics.h"
#include "observability/Names.h"
#include "observability/Trace.h"
#include "persist/Snapshot.h"
#include "support/Env.h"
#include "support/Reloc.h"

#include <cstdio>
#include <cstdlib>

using namespace tcc;
using namespace tcc::cache;
using namespace tcc::core;

ServiceConfig ServiceConfig::fromEnv() {
  ServiceConfig C;
  C.MaxCodeBytes = static_cast<std::size_t>(
      envUInt64("TICKC_CACHE_BYTES", C.MaxCodeBytes));
  if (const char *Dir = std::getenv("TICKC_SNAPSHOT_DIR"))
    C.SnapshotDir = Dir;
  C.SnapshotCompactBytes = static_cast<std::size_t>(
      envUInt64("TICKC_SNAPSHOT_COMPACT", C.SnapshotCompactBytes));
  C.SnapshotBudgetBytes = static_cast<std::size_t>(
      envUInt64("TICKC_SNAPSHOT_BUDGET", C.SnapshotBudgetBytes));
  C.SnapshotTtlSec = envUInt64("TICKC_SNAPSHOT_TTL", C.SnapshotTtlSec);
  C.EnableTier0 = envUInt64("TICKC_TIER0", C.EnableTier0 ? 1 : 0) != 0;
  C.EnableTier0Profile =
      envUInt64("TICKC_TIER0_PROFILE", C.EnableTier0Profile ? 1 : 0) != 0;
  return C;
}

CompileService::CompileService(ServiceConfig Config)
    : Config(Config), Pool(Config.MaxPooledBytes),
      Cache(Config.Shards, Config.MaxCodeBytes) {
  if (!this->Config.SnapshotDir.empty() && this->Config.EnableCache)
    Snap = persist::SnapshotCache::open(this->Config.SnapshotDir,
                                        this->Config.SnapshotCompactBytes,
                                        this->Config.SnapshotBudgetBytes,
                                        this->Config.SnapshotTtlSec);
}

CompileService::~CompileService() = default;

CompiledFn CompileService::compilePooled(Context &Ctx, Stmt Body,
                                         EvalType RetType,
                                         CompileOptions Opts) {
  if (Opts.Ctx)
    return compileFn(Ctx, Body, RetType, Opts);
  CompileContextPool::Handle H = CtxPool.acquire();
  Opts.Ctx = H.get();
  return compileFn(Ctx, Body, RetType, Opts);
}

FnHandle CompileService::getOrCompile(Context &Ctx, Stmt Body,
                                      EvalType RetType, CompileOptions Opts) {
  if (!Config.EnableCache) {
    if (Config.EnablePool && !Opts.Pool)
      Opts.Pool = &Pool;
    return std::make_shared<CompiledFn>(
        compilePooled(Ctx, Body, RetType, Opts));
  }

  SpecKey K;
  {
    obs::TraceSpan Span(obs::SpanKind::SpecFingerprint);
    K = buildSpecKey(Ctx, Body, RetType, Opts);
  }
  return getOrCompileKeyed(Ctx, Body, RetType, Opts, K);
}

FnHandle CompileService::getOrCompileKeyed(Context &Ctx, Stmt Body,
                                           EvalType RetType,
                                           CompileOptions Opts,
                                           const SpecKey &K) {
  if (Config.EnablePool && !Opts.Pool)
    Opts.Pool = &Pool;

  // Runtime symbol name derived from the spec key: perf/flamegraph frames
  // then distinguish specializations of the same source function by their
  // structural hash. Lives on the stack for the duration of the compile;
  // compileFn copies it into the symbol table.
  char SymBuf[64];
  if (!Opts.SymbolName) {
    if (Opts.ProfileName && *Opts.ProfileName)
      std::snprintf(SymBuf, sizeof(SymBuf), "%s#%08llx", Opts.ProfileName,
                    static_cast<unsigned long long>(K.Hash & 0xFFFFFFFFu));
    else
      std::snprintf(SymBuf, sizeof(SymBuf), "spec-%016llx",
                    static_cast<unsigned long long>(K.Hash));
    Opts.SymbolName = SymBuf;
  }

  if (!Config.EnableCache || !K.Cacheable)
    return std::make_shared<CompiledFn>(
        compilePooled(Ctx, Body, RetType, Opts));

  if (FnHandle H = Cache.lookup(K))
    return H;

  // Single-flight: the first thread to miss a key becomes its leader and
  // compiles; concurrent missers block on the leader's result instead of
  // burning a full duplicate compile each.
  std::shared_ptr<InFlightCompile> Fl;
  bool Leader = false;
  {
    support::MutexLock G(InFlightM);
    auto It = InFlight.find(K);
    if (It != InFlight.end()) {
      Fl = It->second;
    } else {
      Fl = std::make_shared<InFlightCompile>();
      InFlight.emplace(K, Fl);
      Leader = true;
    }
  }

  if (!Leader) {
    static obs::Counter &Waits =
        obs::MetricsRegistry::global().counter(obs::names::CacheSingleflightWait);
    Waits.inc();
    support::MutexLock L(Fl->M);
    while (!Fl->Done)
      Fl->CV.wait(Fl->M);
    return Fl->Result;
  }

  // The leader may have won the in-flight slot just after a previous
  // leader published its result and retired; re-probe before compiling.
  FnHandle H = Cache.lookup(K);
  if (!H && Snap) {
    // Warm-start path: probe the on-disk snapshot before paying for a
    // compile, and teach it any compile it could not serve. Both sides key
    // on the address-independent PersistKey (one extra fingerprint walk,
    // only ever on a cold miss with persistence enabled).
    PersistKey PK = buildPersistKey(Ctx, Body, RetType, Opts);
    core::CompiledFn L = Snap->tryLoad(PK, Opts);
    if (L.valid())
      H = Cache.insert(K, std::move(L));
    if (!H) {
      support::RelocTable Relocs;
      CompileOptions SaveOpts = Opts;
      SaveOpts.Relocs = &Relocs;
      core::CompiledFn F = compilePooled(Ctx, Body, RetType, SaveOpts);
      Snap->trySave(PK, F, Relocs);
      H = Cache.insert(K, std::move(F));
    }
  }
  if (!H)
    H = Cache.insert(K, compilePooled(Ctx, Body, RetType, Opts));
  {
    // Retire the flight before publishing: the cache already holds the
    // entry, so late arrivals that miss the flight re-probe and hit.
    support::MutexLock G(InFlightM);
    InFlight.erase(K);
  }
  {
    support::MutexLock L(Fl->M);
    Fl->Done = true;
    Fl->Result = H;
  }
  Fl->CV.notify_all();
  return H;
}

FnHandle CompileService::lookup(const SpecKey &K) {
  if (!Config.EnableCache || !K.Cacheable)
    return nullptr;
  return Cache.lookup(K);
}

CompileService &CompileService::instance() {
  static CompileService S(ServiceConfig::fromEnv());
  return S;
}
