//===- cache/CompileService.h - Memoized instantiation ---------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front door for server-shaped workloads: getOrCompile() memoizes
/// compileFn() behind a structural cache key and allocates code regions
/// from a pool. A cache hit costs one fingerprint walk and one sharded map
/// lookup — no mmap, no mprotect, no code generation; a cold compile still
/// skips the mmap whenever the pool holds a reusable region. Concurrent
/// misses on one key are single-flighted: one thread compiles, the rest
/// block on it and share the result.
///
///   cache::CompileService &S = cache::CompileService::instance();
///   cache::FnHandle F = S.getOrCompile(Ctx, Body, EvalType::Int);
///   int R = F->as<int(int)>()(42);   // Hold F while the code may run.
///
/// getOrCompileTiered() (implemented in src/tier) answers at VCODE latency
/// and transparently re-instantiates hot specs with ICODE in the
/// background — see tier/Tier.h.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_CACHE_COMPILESERVICE_H
#define TICKC_CACHE_COMPILESERVICE_H

#include "cache/CodeCache.h"
#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "core/CompileContext.h"
#include "support/CodeBuffer.h"
#include "support/ThreadSafety.h"

#include <condition_variable>
#include <functional>
#include <unordered_map>

namespace tcc {

namespace persist {
class SnapshotCache;
}

namespace tier {
class TierManager;
class TieredFn;
/// Shared handle to a tiered dispatch slot (see tier/Tier.h).
using TieredFnHandle = std::shared_ptr<TieredFn>;
/// Rebuilds one spec into a fresh Context — the closure the background
/// promotion worker re-runs to instantiate the same function through the
/// optimizing back end. Must be pure: same tree (and same captured
/// run-time constants) every time it is invoked, from any thread.
using SpecBuild = std::function<core::Stmt(core::Context &)>;
} // namespace tier

namespace cache {

/// Knobs for one service instance.
struct ServiceConfig {
  unsigned Shards = 8;
  /// Bound on emitted code bytes held by the cache (LRU beyond it).
  std::size_t MaxCodeBytes = 32u << 20;
  /// Bound on mapping bytes parked in the region pool.
  std::size_t MaxPooledBytes = 64u << 20;
  bool EnableCache = true;
  bool EnablePool = true;
  /// When non-empty, the service opens (creating on demand) the persistent
  /// snapshot file in this directory: in-memory cache misses probe it
  /// before compiling, and fresh compiles of portable specs append to it —
  /// the warm-start path that lets a second process skip every recompile.
  std::string SnapshotDir;
  /// Dead-byte threshold at which opening the snapshot compacts it
  /// (duplicate records from concurrent writers); 0 disables compaction.
  std::size_t SnapshotCompactBytes = 1u << 20;
  /// Per-file size budget for the snapshot (bytes); when an append would
  /// grow the file past it, the oldest records are evicted on the next
  /// compaction pass and oversized appends are dropped (counted as
  /// cache.snapshot.evictions). 0 = unbounded (the pre-budget behavior).
  std::size_t SnapshotBudgetBytes = 0;
  /// Per-record snapshot lifetime in seconds: probes skip records saved
  /// longer ago (counted as cache.snapshot.expired) and the open-time
  /// compaction drops them. 0 = records never expire.
  std::uint64_t SnapshotTtlSec = 0;
  /// Interpreter tier 0 (tier/Tier.h): getOrCompileTiered answers from the
  /// spec-tree interpreter immediately and compiles the baseline in the
  /// background. Off, every tiered slot compiles its baseline
  /// synchronously — the pre-tier-0 behavior.
  bool EnableTier0 = true;
  /// Collect tier-0 execution profiles (trip counts, branch bias,
  /// `$`-stability) and feed them into the ICODE promotion's unroll
  /// decisions (CompileOptions::TripProfile).
  bool EnableTier0Profile = true;

  /// Default config with environment overrides applied:
  /// TICKC_CACHE_BYTES caps MaxCodeBytes (decimal bytes);
  /// TICKC_SNAPSHOT_DIR enables the persistent snapshot cache;
  /// TICKC_SNAPSHOT_COMPACT sets its compaction threshold;
  /// TICKC_SNAPSHOT_BUDGET caps the snapshot file size;
  /// TICKC_TIER0=0 / TICKC_TIER0_PROFILE=0 disable the interpreter tier
  /// and its profile collection. Used by CompileService::instance() so
  /// benches and CI can sweep the knobs without rebuilding.
  static ServiceConfig fromEnv();
};

/// A code cache plus a region pool behind one memoizing entry point.
/// All methods are safe to call from concurrent threads.
class CompileService {
public:
  explicit CompileService(ServiceConfig Config = ServiceConfig());
  ~CompileService(); // Out of line: Snap's type is incomplete here.

  /// Returns the cached function for this (spec, run-time constants,
  /// options) identity, compiling at most once per identity. Concurrent
  /// misses on one key block on a single in-flight compile
  /// (cache.singleflight_wait counts the waiters). Uncacheable specs
  /// (rtEval over memory) always compile. \p Opts.Pool is overridden with
  /// the service's pool unless the caller set one.
  FnHandle getOrCompile(core::Context &Ctx, core::Stmt Body,
                        core::EvalType RetType,
                        core::CompileOptions Opts = core::CompileOptions());

  /// getOrCompile() with the fingerprint already built: skips the key
  /// derivation walk when the caller (like the tier manager, which needs
  /// the key for its own slot memoization anyway) has one for exactly this
  /// (Ctx, Body, RetType, Opts) request. Passing a key built from different
  /// inputs poisons the cache.
  FnHandle getOrCompileKeyed(core::Context &Ctx, core::Stmt Body,
                             core::EvalType RetType, core::CompileOptions Opts,
                             const SpecKey &K);

  /// The steady-state fast path: probes the cache with a key the caller
  /// built earlier (see QueryApp::cacheKey / PowerApp::cacheKey). A server
  /// that fingerprints each plan once can serve repeat instantiations from
  /// here without rebuilding or re-walking the spec; on a null return, fall
  /// back to getOrCompile(). Returns null for uncacheable keys and when the
  /// cache is disabled.
  FnHandle lookup(const SpecKey &K);

  /// Tiered instantiation: compiles \p Build's spec with VCODE (profiled)
  /// and returns a dispatch slot that answers immediately; once the
  /// prologue counter crosses the tier manager's promotion threshold, a
  /// background worker recompiles the spec with ICODE and atomically swaps
  /// the slot. \p BaseOpts seeds both compiles (Backend/Profile are
  /// overridden per tier; RegAlloc/Spill/UnrollLimit are honored). Pass a
  /// null \p Manager for the process-wide tier::TierManager::global().
  /// Defined in tier/Tier.cpp — callers link tickc_tier. The returned
  /// handle (and anything \p Build captures) must not outlive this service
  /// or the manager.
  tier::TieredFnHandle
  getOrCompileTiered(const tier::SpecBuild &Build, core::EvalType RetType,
                     core::CompileOptions BaseOpts = core::CompileOptions(),
                     tier::TierManager *Manager = nullptr);

  /// Stats live on the components themselves (cache().stats(),
  /// pool().stats()) and, cumulatively, in obs::MetricsRegistry — the
  /// service adds no parallel stats surface of its own.
  CodeCache &cache() { return Cache; }
  RegionPool &pool() { return Pool; }
  /// The persistent snapshot cache, or null when ServiceConfig::SnapshotDir
  /// was empty (or the directory was unusable — persistence degrades to
  /// off, never to an error).
  persist::SnapshotCache *snapshot() { return Snap.get(); }
  /// Recycled per-compile scratch contexts; every compile the service
  /// performs (including the tier manager's background promotions, which
  /// come through getOrCompileKeyed) draws from here, so warm-service
  /// compiles allocate nothing.
  core::CompileContextPool &contextPool() { return CtxPool; }

  /// The configuration this service was built with (the tier manager reads
  /// the tier-0 knobs through this).
  const ServiceConfig &config() const { return Config; }

  /// Process-wide default instance (ServiceConfig::fromEnv()).
  static CompileService &instance();

private:
  /// One in-flight compile that duplicate-key racers block on. CV is _any
  /// so it can sleep on the annotated Mutex directly.
  struct InFlightCompile {
    support::Mutex M;
    std::condition_variable_any CV;
    bool Done TICKC_GUARDED_BY(M) = false;
    FnHandle Result TICKC_GUARDED_BY(M);
  };

  /// Compiles with the service's scratch-context pool threaded into Opts
  /// (unless the caller brought a context of its own).
  core::CompiledFn compilePooled(core::Context &Ctx, core::Stmt Body,
                                 core::EvalType RetType,
                                 core::CompileOptions Opts);

  ServiceConfig Config;
  core::CompileContextPool CtxPool;
  /// Open snapshot file, or null when persistence is off. Holds only file
  /// state (fd, mapping, record index) — no code regions — so its position
  /// in the destruction order is unconstrained.
  std::unique_ptr<persist::SnapshotCache> Snap;
  /// Pool is declared before Cache deliberately: cached functions release
  /// their regions into the pool on destruction, so the cache (and its
  /// entries) must be destroyed first. Handles the caller keeps must be
  /// dropped before the service that produced them.
  RegionPool Pool;
  CodeCache Cache;
  support::Mutex InFlightM;
  std::unordered_map<SpecKey, std::shared_ptr<InFlightCompile>, SpecKeyHash>
      InFlight TICKC_GUARDED_BY(InFlightM);
};

} // namespace cache
} // namespace tcc

#endif // TICKC_CACHE_COMPILESERVICE_H
