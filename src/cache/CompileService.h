//===- cache/CompileService.h - Memoized instantiation ---------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front door for server-shaped workloads: getOrCompile() memoizes
/// compileFn() behind a structural cache key and allocates code regions
/// from a pool. A cache hit costs one fingerprint walk and one sharded map
/// lookup — no mmap, no mprotect, no code generation; a cold compile still
/// skips the mmap whenever the pool holds a reusable region.
///
///   cache::CompileService &S = cache::CompileService::instance();
///   cache::FnHandle F = S.getOrCompile(Ctx, Body, EvalType::Int);
///   int R = F->as<int(int)>()(42);   // Hold F while the code may run.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_CACHE_COMPILESERVICE_H
#define TICKC_CACHE_COMPILESERVICE_H

#include "cache/CodeCache.h"
#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "support/CodeBuffer.h"

namespace tcc {
namespace cache {

/// Knobs for one service instance.
struct ServiceConfig {
  unsigned Shards = 8;
  /// Bound on emitted code bytes held by the cache (LRU beyond it).
  std::size_t MaxCodeBytes = 32u << 20;
  /// Bound on mapping bytes parked in the region pool.
  std::size_t MaxPooledBytes = 64u << 20;
  bool EnableCache = true;
  bool EnablePool = true;
};

/// A code cache plus a region pool behind one memoizing entry point.
/// All methods are safe to call from concurrent threads.
class CompileService {
public:
  explicit CompileService(ServiceConfig Config = ServiceConfig());

  /// Returns the cached function for this (spec, run-time constants,
  /// options) identity, compiling at most once per identity. Uncacheable
  /// specs (rtEval over memory) and duplicate-key races compile anyway but
  /// stay correct. \p Opts.Pool is overridden with the service's pool
  /// unless the caller set one.
  FnHandle getOrCompile(core::Context &Ctx, core::Stmt Body,
                        core::EvalType RetType,
                        core::CompileOptions Opts = core::CompileOptions());

  /// The steady-state fast path: probes the cache with a key the caller
  /// built earlier (see QueryApp::cacheKey / PowerApp::cacheKey). A server
  /// that fingerprints each plan once can serve repeat instantiations from
  /// here without rebuilding or re-walking the spec; on a null return, fall
  /// back to getOrCompile(). Returns null for uncacheable keys and when the
  /// cache is disabled.
  FnHandle lookup(const SpecKey &K);

  /// Stats live on the components themselves (cache().stats(),
  /// pool().stats()) and, cumulatively, in obs::MetricsRegistry — the
  /// service adds no parallel stats surface of its own.
  CodeCache &cache() { return Cache; }
  RegionPool &pool() { return Pool; }

  /// Process-wide default instance (default config).
  static CompileService &instance();

private:
  ServiceConfig Config;
  /// Pool is declared before Cache deliberately: cached functions release
  /// their regions into the pool on destruction, so the cache (and its
  /// entries) must be destroyed first. Handles the caller keeps must be
  /// dropped before the service that produced them.
  RegionPool Pool;
  CodeCache Cache;
};

} // namespace cache
} // namespace tcc

#endif // TICKC_CACHE_COMPILESERVICE_H
