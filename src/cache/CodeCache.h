//===- cache/CodeCache.h - Sharded memoizing code cache --------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded, LRU code cache mapping SpecKeys to compiled
/// functions. The paper's economics (Table 1, Figure 5) make dynamic
/// compilation pay only past a use-count crossover; memoizing instantiation
/// moves that crossover to 1 for every repeated specialization.
///
/// Sharding: a key's hash picks one of N shards, each with its own mutex,
/// map, and LRU list, so concurrent compile threads contend only when they
/// hash to the same shard. Eviction: each shard is bounded by
/// MaxBytes/NumShards of *emitted code bytes*; inserting past the bound
/// evicts least-recently-used entries. Entries are shared_ptrs, so an
/// evicted function stays alive (and its pooled region unreturned) until
/// the last caller drops its handle — eviction can never unmap code that
/// is still executing.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_CACHE_CODECACHE_H
#define TICKC_CACHE_CODECACHE_H

#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "observability/Metrics.h"
#include "support/ThreadSafety.h"

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

namespace tcc {
namespace cache {

/// A shared, refcounted handle to an instantiated function. Hold it for as
/// long as the code may run; the executable region lives while any handle
/// does, regardless of cache eviction.
using FnHandle = std::shared_ptr<const core::CompiledFn>;

/// Monotonic counters plus a point-in-time byte/entry census. This is the
/// single stats surface for the caching layer — per-instance counts here,
/// process-wide cumulative mirrors in obs::MetricsRegistry under the
/// cache.* names (observability/Names.h).
struct CacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;      ///< Lookups that found nothing.
  std::uint64_t Evictions = 0;   ///< Entries pushed out by the byte bound.
  std::uint64_t Insertions = 0;
  /// Insertions whose function was revived from a persistent snapshot
  /// (CompiledFn::fromSnapshot()) rather than compiled in this process —
  /// kept distinct from Hits so warm-start loads never masquerade as
  /// in-memory hits in the report.
  std::uint64_t SnapshotLoads = 0;
  std::size_t CodeBytes = 0;     ///< Emitted bytes currently resident.
  std::size_t Entries = 0;
};

class CodeCache {
public:
  /// \p NumShards is rounded up to a power of two. \p MaxBytes bounds the
  /// emitted code bytes cached across all shards.
  explicit CodeCache(unsigned NumShards = 8,
                     std::size_t MaxBytes = 32u << 20);

  CodeCache(const CodeCache &) = delete;
  CodeCache &operator=(const CodeCache &) = delete;

  /// Returns the cached function for \p K and marks it most recently used,
  /// or nullptr.
  FnHandle lookup(const SpecKey &K);

  /// Inserts \p Fn under \p K, evicting LRU entries if the shard's byte
  /// budget overflows. If another thread inserted the same key first, that
  /// entry wins and is returned — callers lose only a duplicated compile,
  /// never coherence.
  FnHandle insert(const SpecKey &K, core::CompiledFn &&Fn);

  /// Drops every entry (live handles keep their functions alive).
  void clear();

  CacheStats stats() const;
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

private:
  struct Entry {
    SpecKey Key;
    FnHandle Fn;
    std::size_t Bytes = 0;
  };
  struct Shard {
    support::Mutex M;
    /// Front = most recently used.
    std::list<Entry> Lru TICKC_GUARDED_BY(M);
    std::unordered_map<SpecKey, std::list<Entry>::iterator, SpecKeyHash>
        Map TICKC_GUARDED_BY(M);
    std::size_t Bytes TICKC_GUARDED_BY(M) = 0;
  };

  Shard &shardFor(const SpecKey &K) {
    // The low hash bits pick the map bucket inside the shard; use high
    // bits for shard selection so the two are independent.
    return *Shards[(K.Hash >> 48) & (Shards.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> Shards;
  std::size_t ShardBudget;

  obs::Counter Hits, Misses, Evictions, Insertions, SnapshotLoads;
};

} // namespace cache
} // namespace tcc

#endif // TICKC_CACHE_CODECACHE_H
