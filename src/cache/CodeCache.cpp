//===- cache/CodeCache.cpp - Sharded memoizing code cache -----------------==//

#include "cache/CodeCache.h"

#include "observability/Metrics.h"
#include "observability/Flight.h"
#include "observability/Names.h"
#include "observability/Trace.h"

#include <bit>
#include <cstdint>

using namespace tcc;
using namespace tcc::cache;

namespace {

/// Global-registry mirrors of the per-instance counters: cumulative across
/// every CodeCache in the process, for tickc-report and trend dashboards.
/// Per-instance counts stay on the cache itself (tests assert on them).
struct CacheMetrics {
  obs::Counter &Hits, &Misses, &Evictions, &Insertions;
  obs::Counter &BytesInserted, &BytesEvicted;
  static CacheMetrics &get() {
    namespace N = obs::names;
    auto &R = obs::MetricsRegistry::global();
    static CacheMetrics M{R.counter(N::CacheHits),
                          R.counter(N::CacheMisses),
                          R.counter(N::CacheEvictions),
                          R.counter(N::CacheInsertions),
                          R.counter(N::CacheBytesInserted),
                          R.counter(N::CacheBytesEvicted)};
    return M;
  }
};

} // namespace

CodeCache::CodeCache(unsigned NumShards, std::size_t MaxBytes) {
  if (NumShards == 0)
    NumShards = 1;
  NumShards = std::bit_ceil(NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardBudget = MaxBytes / NumShards;
  if (ShardBudget == 0)
    ShardBudget = 1;
}

FnHandle CodeCache::lookup(const SpecKey &K) {
  obs::TraceSpan Span(obs::SpanKind::CacheProbe);
  Shard &S = shardFor(K);
  support::MutexLock G(S.M);
  auto It = S.Map.find(K);
  if (It == S.Map.end()) {
    Misses.inc();
    CacheMetrics::get().Misses.inc();
    return nullptr;
  }
  // Touch: splice to the front of the LRU list (iterators stay valid).
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Hits.inc();
  CacheMetrics::get().Hits.inc();
  return It->second->Fn;
}

FnHandle CodeCache::insert(const SpecKey &K, core::CompiledFn &&Fn) {
  obs::TraceSpan Span(obs::SpanKind::CacheInsert);
  CacheMetrics &GM = CacheMetrics::get();
  Entry E;
  E.Key = K;
  E.Bytes = Fn.stats().CodeBytes ? Fn.stats().CodeBytes : 1;
  E.Fn = std::make_shared<core::CompiledFn>(std::move(Fn));

  Shard &S = shardFor(K);
  support::MutexLock G(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Lost an insert race: the first compile wins so every caller shares
    // one entry; our duplicate dies (returning its region to the pool).
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return It->second->Fn;
  }
  S.Bytes += E.Bytes;
  GM.BytesInserted.inc(E.Bytes);
  S.Lru.push_front(std::move(E));
  S.Map.emplace(K, S.Lru.begin());
  Insertions.inc();
  GM.Insertions.inc();
  // Provenance split: the process-wide cache.snapshot.* counters live in
  // the persist layer (which knows about probes and rejects too); the
  // per-instance count here lets tests pin loads to one cache.
  if (S.Lru.front().Fn->fromSnapshot())
    SnapshotLoads.inc();
  // Evict from the cold end, but never the entry just inserted.
  while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
    Entry &Victim = S.Lru.back();
    S.Bytes -= Victim.Bytes;
    GM.BytesEvicted.inc(Victim.Bytes);
    obs::flightRecord(
        obs::FlightEvent::CacheEvict,
        Victim.Fn ? reinterpret_cast<std::uintptr_t>(Victim.Fn->entry()) : 0,
        Victim.Bytes);
    S.Map.erase(Victim.Key);
    S.Lru.pop_back();
    Evictions.inc();
    GM.Evictions.inc();
  }
  return S.Lru.front().Fn;
}

void CodeCache::clear() {
  for (auto &SP : Shards) {
    support::MutexLock G(SP->M);
    SP->Map.clear();
    SP->Lru.clear();
    SP->Bytes = 0;
  }
}

CacheStats CodeCache::stats() const {
  CacheStats St;
  St.Hits = Hits.value();
  St.Misses = Misses.value();
  St.Evictions = Evictions.value();
  St.Insertions = Insertions.value();
  St.SnapshotLoads = SnapshotLoads.value();
  for (const auto &SP : Shards) {
    support::MutexLock G(SP->M);
    St.CodeBytes += SP->Bytes;
    St.Entries += SP->Lru.size();
  }
  return St;
}
