//===- cache/CodeCache.cpp - Sharded memoizing code cache -----------------==//

#include "cache/CodeCache.h"

#include <bit>

using namespace tcc;
using namespace tcc::cache;

CodeCache::CodeCache(unsigned NumShards, std::size_t MaxBytes) {
  if (NumShards == 0)
    NumShards = 1;
  NumShards = std::bit_ceil(NumShards);
  Shards.reserve(NumShards);
  for (unsigned I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardBudget = MaxBytes / NumShards;
  if (ShardBudget == 0)
    ShardBudget = 1;
}

FnHandle CodeCache::lookup(const SpecKey &K) {
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> G(S.M);
  auto It = S.Map.find(K);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Touch: splice to the front of the LRU list (iterators stay valid).
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second->Fn;
}

FnHandle CodeCache::insert(const SpecKey &K, core::CompiledFn &&Fn) {
  Entry E;
  E.Key = K;
  E.Bytes = Fn.stats().CodeBytes ? Fn.stats().CodeBytes : 1;
  E.Fn = std::make_shared<core::CompiledFn>(std::move(Fn));

  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> G(S.M);
  auto It = S.Map.find(K);
  if (It != S.Map.end()) {
    // Lost an insert race: the first compile wins so every caller shares
    // one entry; our duplicate dies (returning its region to the pool).
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return It->second->Fn;
  }
  S.Bytes += E.Bytes;
  S.Lru.push_front(std::move(E));
  S.Map.emplace(K, S.Lru.begin());
  Insertions.fetch_add(1, std::memory_order_relaxed);
  // Evict from the cold end, but never the entry just inserted.
  while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
    Entry &Victim = S.Lru.back();
    S.Bytes -= Victim.Bytes;
    S.Map.erase(Victim.Key);
    S.Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return S.Lru.front().Fn;
}

void CodeCache::clear() {
  for (auto &SP : Shards) {
    std::lock_guard<std::mutex> G(SP->M);
    SP->Map.clear();
    SP->Lru.clear();
    SP->Bytes = 0;
  }
}

CacheStats CodeCache::stats() const {
  CacheStats St;
  St.Hits = Hits.load(std::memory_order_relaxed);
  St.Misses = Misses.load(std::memory_order_relaxed);
  St.Evictions = Evictions.load(std::memory_order_relaxed);
  St.Insertions = Insertions.load(std::memory_order_relaxed);
  for (const auto &SP : Shards) {
    std::lock_guard<std::mutex> G(SP->M);
    St.CodeBytes += SP->Bytes;
    St.Entries += SP->Lru.size();
  }
  return St;
}
