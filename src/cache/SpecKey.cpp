//===- cache/SpecKey.cpp - Structural fingerprint of a cspec --------------==//

#include "cache/SpecKey.h"

#include "core/SpecInterp.h"
#include "support/Hash.h"
#include "verify/Verify.h"

#include <bit>
#include <cstring>

using namespace tcc;
using namespace tcc::cache;
using namespace tcc::core;

namespace {

/// Serializes a specification tree into canonical bytes. Derived node facts
/// (RegNeed, Flags) are skipped: they are functions of the serialized
/// structure. Null children get an explicit marker so sibling boundaries
/// stay unambiguous.
class KeyWriter {
public:
  explicit KeyWriter(std::vector<std::uint8_t> &Out,
                     std::vector<ExtRef> *Refs = nullptr)
      : Out(Out), Refs(Refs) {
    Out.resize(1024);
    Cur = Out.data();
    End = Cur + Out.size();
  }

  bool Cacheable = true;

  /// Trims the buffer to the bytes actually written. Must be called before
  /// the caller reads Out.
  void finish() { Out.resize(static_cast<std::size_t>(Cur - Out.data())); }

  // Key construction sits on the cache-hit path, so the serializer is tuned
  // like one: a raw cursor over a pre-grown buffer, one capacity check per
  // node covering all of that node's fixed-width fields, then unchecked
  // stores. Host byte order is fine — keys never leave the process.
  void ensure(std::size_t N) {
    if (static_cast<std::size_t>(End - Cur) < N)
      grow(N);
  }
  void raw(const void *P, std::size_t N) {
    std::memcpy(Cur, P, N);
    Cur += N;
  }
  void u8(std::uint8_t V) { *Cur++ = V; }
  void u32(std::uint32_t V) { raw(&V, sizeof V); }
  void u64(std::uint64_t V) { raw(&V, sizeof V); }

  void expr(const ExprNode *N) {
    if (!N) {
      ensure(1);
      u8(0);
      return;
    }
    // Header (8) plus the widest leaf payload (8).
    ensure(16);
    std::uint8_t Hdr[8];
    Hdr[0] = 1;
    Hdr[1] = static_cast<std::uint8_t>(N->Kind);
    Hdr[2] = static_cast<std::uint8_t>(N->Type);
    Hdr[3] = N->OpByte;
    std::uint32_t Local = static_cast<std::uint32_t>(N->LocalId);
    std::memcpy(Hdr + 4, &Local, 4);
    raw(Hdr, 8);
    switch (N->Kind) {
    case ExprKind::ConstInt:
    case ExprKind::ConstLong:
      u64(static_cast<std::uint64_t>(N->IntVal));
      break;
    case ExprKind::ConstDouble:
      u64(std::bit_cast<std::uint64_t>(N->FpVal));
      break;
    case ExprKind::FreeVar:
    case ExprKind::Call: {
      // Captured addresses are part of the code the walk emits. In persist
      // mode (Refs attached) the key stays address-independent: the bytes
      // carry the first-occurrence ordinal, the addresses land in Refs.
      std::uint64_t Addr = static_cast<std::uint64_t>(
          reinterpret_cast<std::uintptr_t>(N->PtrVal));
      if (Refs)
        u32(refOrdinal(static_cast<std::uint8_t>(N->Kind), Addr));
      else
        u64(Addr);
      break;
    }
    case ExprKind::RtEval:
      // The rc interpreter may read memory under $: the immediate it embeds
      // depends on the pointee at instantiation time, not on the tree.
      if (N->A && (N->A->Flags & EF_HasMemOp))
        Cacheable = false;
      break;
    default:
      break;
    }
    expr(N->A);
    expr(N->B);
    expr(N->C);
    ensure(4);
    u32(N->ArgC);
    for (std::uint32_t I = 0; I < N->ArgC; ++I)
      expr(N->ArgV[I]);
  }

  void stmt(const StmtNode *S) {
    if (!S) {
      ensure(1);
      u8(0);
      return;
    }
    ensure(7);
    std::uint8_t Hdr[7];
    Hdr[0] = 1;
    Hdr[1] = static_cast<std::uint8_t>(S->Kind);
    Hdr[2] = S->OpByte;
    std::uint32_t Local = static_cast<std::uint32_t>(S->LocalId);
    std::memcpy(Hdr + 3, &Local, 4);
    raw(Hdr, 7);
    expr(S->E);
    expr(S->E2);
    expr(S->E3);
    stmt(S->S1);
    stmt(S->S2);
    ensure(4);
    u32(S->BodyC);
    for (std::uint32_t I = 0; I < S->BodyC; ++I)
      stmt(S->BodyV[I]);
  }

private:
  /// First-occurrence ordinal of (Kind, Addr). Linear scan: spec trees
  /// capture a handful of externals, not hundreds.
  std::uint32_t refOrdinal(std::uint8_t Kind, std::uint64_t Addr) {
    for (std::size_t I = 0; I < Refs->size(); ++I)
      if ((*Refs)[I].Kind == Kind && (*Refs)[I].Addr == Addr)
        return static_cast<std::uint32_t>(I);
    Refs->push_back({Kind, Addr});
    return static_cast<std::uint32_t>(Refs->size() - 1);
  }

  void grow(std::size_t N) {
    std::size_t Len = static_cast<std::size_t>(Cur - Out.data());
    std::size_t Cap = Out.size();
    do
      Cap *= 2;
    while (Cap - Len < N);
    Out.resize(Cap);
    Cur = Out.data() + Len;
    End = Out.data() + Out.size();
  }

  std::vector<std::uint8_t> &Out;
  std::vector<ExtRef> *Refs;
  std::uint8_t *Cur = nullptr;
  std::uint8_t *End = nullptr;
};

/// Hashes the key bytes a word at a time (support/Hash.h — shared with the
/// snapshot layer so record probes and spec keys agree on one algorithm).
std::uint64_t hashBytes(const std::vector<std::uint8_t> &Bytes) {
  return support::hashBytes(Bytes.data(), Bytes.size());
}

/// The canonical serialization both key flavors share; only the FreeVar /
/// Call leaf encoding differs (address vs ordinal), decided by whether the
/// writer carries a Refs collector.
void writeKeyBody(KeyWriter &W, const Context &Ctx, Stmt Body,
                  EvalType RetType, const CompileOptions &Opts) {
  // Everything in CompileOptions that changes generated code (Pool changes
  // only where code lives, so it is deliberately absent).
  //
  // Fixed-width options prefix: one capacity check covers it all.
  W.ensure(32);
  // Backend is the FIRST key byte and covers BackendKind exhaustively:
  // VCode=0, ICode=1, PCode=2 each serialize to a distinct byte, and key
  // equality is full byte-string equality, so the three back ends can never
  // share a cache slot. (PCODE output is byte-identical to VCODE by
  // construction, but the entries stay separate on purpose — a cached hit
  // must reproduce the backend the options asked for, including its stats
  // and audit posture.) Pinned by SpecKey.BackendsOccupyDistinctSlots.
  W.u8(static_cast<std::uint8_t>(Opts.Backend));
  W.u8(static_cast<std::uint8_t>(Opts.RegAlloc));
  W.u8(static_cast<std::uint8_t>(Opts.Spill));
  W.u8(static_cast<std::uint8_t>(Opts.Placement));
  W.u64(Opts.CodeCapacity);
  W.u32(Opts.UnrollLimit);
  // Tier-0 profile digest: the per-loop unroll decisions steer code shape,
  // so differently-profiled compiles of one spec must occupy distinct
  // slots (and snapshot records). Unprofiled compiles write a single zero
  // byte, keeping their keys byte-identical to the pre-profile format.
  W.u8(Opts.TripProfile != nullptr);
  if (const core::Tier0ProfileSnapshot *TP = Opts.TripProfile) {
    // +8 keeps the trailing flag bytes below inside this check's envelope.
    W.ensure(12 + 5 * static_cast<std::size_t>(TP->NumLoops));
    W.u32(TP->NumLoops);
    for (std::uint32_t I = 0; I < TP->NumLoops; ++I) {
      W.u8(TP->Decision[I]);
      W.u32(TP->MaxTrip[I]);
    }
  }
  // Profiled code carries an extra prologue instruction, so it can never
  // share an entry with unprofiled code. ProfileName is a label, not a
  // semantic input: same-key profiled compiles share the first entry's
  // counter (and name).
  W.u8(Opts.Profile ? 1 : 0);
  // The *effective* verify setting (option OR the TICKC_VERIFY environment):
  // a hit on a verified entry must mean the stored code actually passed the
  // checkers, and flipping the environment variable mid-run must not let
  // unverified cached code satisfy a verified lookup.
  W.u8(verify::enabled(Opts.Verify) ? 1 : 0);
  W.u8(static_cast<std::uint8_t>(RetType));

  // The vspec table: LocalIds in the tree index into it.
  const std::vector<LocalInfo> &Locals = Ctx.locals();
  W.ensure(4 + 5 * Locals.size());
  W.u32(static_cast<std::uint32_t>(Locals.size()));
  for (const LocalInfo &L : Locals) {
    W.u8(static_cast<std::uint8_t>(L.Type));
    W.u32(static_cast<std::uint32_t>(L.ArgIndex));
  }

  W.stmt(Body.node());
}

} // namespace

SpecKey cache::buildSpecKey(const Context &Ctx, Stmt Body, EvalType RetType,
                            const CompileOptions &Opts) {
  SpecKey K;
  KeyWriter W(K.Bytes);
  writeKeyBody(W, Ctx, Body, RetType, Opts);
  W.finish();
  K.Cacheable = W.Cacheable;
  K.Hash = hashBytes(K.Bytes);
  return K;
}

PersistKey cache::buildPersistKey(const Context &Ctx, Stmt Body,
                                  EvalType RetType,
                                  const CompileOptions &Opts) {
  PersistKey K;
  KeyWriter W(K.Bytes, &K.Refs);
  writeKeyBody(W, Ctx, Body, RetType, Opts);
  W.finish();
  K.Cacheable = W.Cacheable;
  K.Hash = hashBytes(K.Bytes);
  return K;
}
