//===- apps/MatScale.h - Matrix scaling by a run-time constant -*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `ms` benchmark: "repeatedly scale a 100x100 matrix of
/// integers by a run-time constant" (§6.2). The dynamic version hardwires
/// the scale factor (strength-reducing the multiply) and the matrix extent.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_MATSCALE_H
#define TICKC_APPS_MATSCALE_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <vector>

namespace tcc {
namespace apps {

class MatScaleApp {
public:
  explicit MatScaleApp(unsigned Dim = 100, int Factor = 3, unsigned Seed = 2);

  void scaleStaticO0(int *M) const;
  void scaleStaticO2(int *M) const;

  /// Instantiates `void scale(int *m)` with factor and extent hardwired.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Tiered instantiation: interpreted immediately, machine code in the
  /// background. Call as `TF->call<void(int *)>(M)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// A fresh working copy of the matrix.
  std::vector<int> matrix() const { return Data; }
  unsigned elems() const { return Dim * Dim; }
  int factor() const { return Factor; }

private:
  unsigned Dim;
  int Factor;
  std::vector<int> Data;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_MATSCALE_H
