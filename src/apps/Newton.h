//===- apps/Newton.h - Parameterized root finding ---------------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `ntn` benchmark (§6.2, "Parameterized functions"): a
/// Newton-Raphson solver whose function and derivative are supplied as code
/// fragments. The static version calls f and f' through function pointers
/// every iteration; the `C version splices the cspecs for f(x) = (x+1)^3
/// and f'(x) = 3(x+1)^2 directly into the iteration loop.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_NEWTON_H
#define TICKC_APPS_NEWTON_H

#include "cache/CompileService.h"
#include "core/Compile.h"

namespace tcc {
namespace apps {

class NewtonApp {
public:
  explicit NewtonApp(double Tolerance = 1e-9, unsigned MaxIter = 100)
      : Tol(Tolerance), MaxIter(MaxIter) {}

  double solveStaticO0(double X0) const;
  double solveStaticO2(double X0) const;

  /// Instantiates `double solve(double x0)` with f and f' inlined.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Tiered instantiation: interpreted immediately, machine code in the
  /// background. Call as `TF->call<double(double)>(X0)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  double tolerance() const { return Tol; }

private:
  double Tol;
  unsigned MaxIter;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_NEWTON_H
