//===- apps/Compose.cpp ----------------------------------------------------==//

#include "apps/Compose.h"

#include "apps/StaticOpt.h"

#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

// The data-manipulation layers, reached through function pointers in the
// static pipeline.
static std::uint32_t byteswapStep(std::uint32_t W) {
  return ((W >> 24) & 0xFFu) | ((W >> 8) & 0xFF00u) | ((W << 8) & 0xFF0000u) |
         (W << 24);
}
static std::uint32_t checksumStep(std::uint32_t Sum, std::uint32_t W) {
  return Sum + W;
}

#define TICKC_CMP_BODY                                                         \
  {                                                                            \
    std::uint32_t Sum = 0;                                                     \
    for (unsigned I = 0; I < N; ++I) {                                         \
      std::uint32_t W = Src[I];                                                \
      Sum = Ck(Sum, W);                                                        \
      Dst[I] = Bs(W);                                                          \
    }                                                                          \
    return Sum;                                                                \
  }

TICKC_STATIC_O0 static std::uint32_t
pipeO0(const std::uint32_t *Src, std::uint32_t *Dst, unsigned N,
       std::uint32_t (*Ck)(std::uint32_t, std::uint32_t),
       std::uint32_t (*Bs)(std::uint32_t)) TICKC_CMP_BODY

TICKC_STATIC_O2 static std::uint32_t
pipeO2(const std::uint32_t *Src, std::uint32_t *Dst, unsigned N,
       std::uint32_t (*Ck)(std::uint32_t, std::uint32_t),
       std::uint32_t (*Bs)(std::uint32_t)) TICKC_CMP_BODY

ComposeApp::ComposeApp(unsigned Bytes, unsigned Seed) : Src(Bytes / 4) {
  std::mt19937 Rng(Seed);
  for (std::uint32_t &W : Src)
    W = Rng();
}

std::uint32_t ComposeApp::pipeStaticO0(std::uint32_t *Dst) const {
  return pipeO0(Src.data(), Dst, words(), &checksumStep, &byteswapStep);
}

std::uint32_t ComposeApp::pipeStaticO2(std::uint32_t *Dst) const {
  return pipeO2(Src.data(), Dst, words(), &checksumStep, &byteswapStep);
}

namespace {

/// Builds the fused checksum+byteswap copy loop into \p C.
Stmt buildComposeSpec(Context &C, const std::uint32_t *SrcData,
                      unsigned Words) {
  VSpec Dst = C.paramPtr(0);
  VSpec I = C.localInt();
  VSpec W = C.localInt();
  VSpec Sum = C.localInt();

  // The two layers as cspec builders: composition fuses them into the copy
  // loop with no calls.
  auto Checksum = [&](Expr Acc, Expr Word) { return Acc + Word; };
  auto Byteswap = [&](Expr Word) {
    Expr B0 = (Word >> C.intConst(24)) & C.intConst(0xFF);
    Expr B1 = (Word >> C.intConst(8)) & C.intConst(0xFF00);
    Expr B2 = (Word << C.intConst(8)) & C.intConst(0xFF0000);
    Expr B3 = Word << C.intConst(24);
    return B0 | B1 | B2 | B3;
  };

  Stmt Body = C.block({
      C.assign(W, C.index(C.rcPtr(SrcData), Expr(I), MemType::I32)),
      C.assign(Sum, Checksum(Expr(Sum), Expr(W))),
      C.storeIndex(Expr(Dst), Expr(I), MemType::I32, Byteswap(Expr(W))),
  });
  return C.block({
      C.assign(Sum, C.intConst(0)),
      C.forStmt(I, C.intConst(0), CmpKind::LtS,
                C.rcInt(static_cast<int>(Words)), C.intConst(1), Body),
      C.ret(Sum),
  });
}

/// 1024 words: keep the copy loop rolled.
CompileOptions cmpOptions(const CompileOptions &Opts) {
  CompileOptions O = Opts;
  O.UnrollLimit = 64;
  return O;
}

} // namespace

CompiledFn ComposeApp::specialize(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildComposeSpec(C, Src.data(), words()), EvalType::Int,
                   cmpOptions(Opts));
}

tier::TieredFnHandle
ComposeApp::specializeTiered(cache::CompileService &Service,
                             tier::TierManager *Manager,
                             const CompileOptions &Opts) const {
  const std::uint32_t *SrcData = Src.data();
  unsigned W = words();
  return Service.getOrCompileTiered(
      [SrcData, W](Context &C) { return buildComposeSpec(C, SrcData, W); },
      EvalType::Int, cmpOptions(Opts), Manager);
}
