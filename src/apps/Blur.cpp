//===- apps/Blur.cpp -------------------------------------------------------==//

#include "apps/Blur.h"

#include "apps/StaticOpt.h"

#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

#define TICKC_BLUR_BODY                                                        \
  {                                                                            \
    for (int Y = 0; Y < H; ++Y)                                                \
      for (int X = 0; X < W; ++X) {                                            \
        int Sum = 0, Cnt = 0;                                                  \
        for (int Dy = -R; Dy <= R; ++Dy)                                       \
          for (int Dx = -R; Dx <= R; ++Dx) {                                   \
            int YY = Y + Dy, XX = X + Dx;                                      \
            if (YY >= 0 && YY < H && XX >= 0 && XX < W) {                      \
              Sum += Src[YY * W + XX];                                         \
              ++Cnt;                                                           \
            }                                                                  \
          }                                                                    \
        Dst[Y * W + X] = Sum / Cnt;                                            \
      }                                                                        \
  }

TICKC_STATIC_O0 static void blurO0(const std::int32_t *Src, std::int32_t *Dst,
                                   int W, int H, int R) TICKC_BLUR_BODY

TICKC_STATIC_O2 static void blurO2(const std::int32_t *Src, std::int32_t *Dst,
                                   int W, int H, int R) TICKC_BLUR_BODY

BlurApp::BlurApp(unsigned Width, unsigned Height, unsigned Radius,
                 unsigned Seed)
    : W(Width), H(Height), R(Radius), Src(Width * Height) {
  std::mt19937 Rng(Seed);
  for (std::int32_t &P : Src)
    P = static_cast<int>(Rng() % 256);
}

void BlurApp::blurStaticO0(std::int32_t *Dst) const {
  blurO0(Src.data(), Dst, static_cast<int>(W), static_cast<int>(H),
         static_cast<int>(R));
}

void BlurApp::blurStaticO2(std::int32_t *Dst) const {
  blurO2(Src.data(), Dst, static_cast<int>(W), static_cast<int>(H),
         static_cast<int>(R));
}

CompiledFn BlurApp::specialize(const CompileOptions &Opts) const {
  Context C;
  VSpec Dst = C.paramPtr(0);
  VSpec X = C.localInt(), Y = C.localInt();
  VSpec Dy = C.localInt(), Dx = C.localInt();
  VSpec Sum = C.localInt(), Cnt = C.localInt();
  VSpec YY = C.localInt(), XX = C.localInt();

  auto Wc = [&] { return C.rcInt(static_cast<int>(W)); };
  auto Hc = [&] { return C.rcInt(static_cast<int>(H)); };
  Expr SrcBase = C.rcPtr(Src.data());

  // Innermost accumulate with run-time-constant boundary checks; dy/dx are
  // derived run-time constants (kernel loops unroll), so yy = y + dy folds
  // to an add-immediate and yy*W strength-reduces.
  Stmt Accum = C.block({
      C.assign(YY, Expr(Y) + Expr(Dy)),
      C.assign(XX, Expr(X) + Expr(Dx)),
      C.ifStmt((Expr(YY) >= C.intConst(0)) && (Expr(YY) < Hc()) &&
                   (Expr(XX) >= C.intConst(0)) && (Expr(XX) < Wc()),
               C.block({
                   C.assign(Sum,
                            Expr(Sum) +
                                C.index(SrcBase,
                                        Expr(YY) * Wc() + Expr(XX),
                                        MemType::I32)),
                   C.assign(Cnt, Expr(Cnt) + C.intConst(1)),
               })),
  });
  int Rad = static_cast<int>(R);
  Stmt KernelLoops = C.forStmt(
      Dy, C.rcInt(-Rad), CmpKind::LeS, C.rcInt(Rad), C.intConst(1),
      C.forStmt(Dx, C.rcInt(-Rad), CmpKind::LeS, C.rcInt(Rad), C.intConst(1),
                Accum));
  Stmt PixelBody = C.block({
      C.assign(Sum, C.intConst(0)),
      C.assign(Cnt, C.intConst(0)),
      KernelLoops,
      C.storeIndex(Expr(Dst), Expr(Y) * Wc() + Expr(X), MemType::I32,
                   Expr(Sum) / Expr(Cnt)),
  });
  Stmt Fn = C.block({
      C.forStmt(Y, C.intConst(0), CmpKind::LtS, Hc(), C.intConst(1),
                C.forStmt(X, C.intConst(0), CmpKind::LtS, Wc(),
                          C.intConst(1), PixelBody)),
      C.retVoid(),
  });
  // The kernel loops (2R+1 iterations) unroll; the image loops stay rolled.
  CompileOptions O = Opts;
  O.UnrollLimit = 2 * R + 1;
  return compileFn(C, Fn, EvalType::Void, O);
}
