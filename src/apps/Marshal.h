//===- apps/Marshal.h - Dynamic function-call construction ------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `mshl`/`umshl` benchmarks (§6.2, "Dynamic function call
/// construction"): given a printf-style format string, generate marshaling
/// code (a function with a statically unknown number of parameters that
/// packs them into a byte vector) and unmarshaling code (unpack a byte
/// vector and *call a function* with that many arguments). ANSI C cannot
/// express either generically; the static baselines are hand-written for
/// the five-int case, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_MARSHAL_H
#define TICKC_APPS_MARSHAL_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <cstdint>
#include <string>

namespace tcc {
namespace apps {

class MarshalApp {
public:
  /// \p Format uses 'i' for int arguments (the benchmark uses "iiiii").
  explicit MarshalApp(std::string Format = "iiiii")
      : Format(std::move(Format)) {}

  /// Hand-written static marshal/unmarshal for exactly five ints.
  static void marshal5StaticO0(std::uint8_t *Buf, int A0, int A1, int A2,
                               int A3, int A4);
  static void marshal5StaticO2(std::uint8_t *Buf, int A0, int A1, int A2,
                               int A3, int A4);
  static int unmarshal5StaticO0(const std::uint8_t *Buf,
                                int (*Fn)(int, int, int, int, int));
  static int unmarshal5StaticO2(const std::uint8_t *Buf,
                                int (*Fn)(int, int, int, int, int));

  /// Generates `void marshal(int a0, ..., uint8_t *buf)` from the format:
  /// the buffer pointer is the last parameter.
  core::CompiledFn buildMarshaler(const core::CompileOptions &Opts) const;

  /// Generates `int unmarshal(const uint8_t *buf)` that unpacks the
  /// arguments and calls \p Target with them — a call with a run-time
  /// determined number of arguments.
  core::CompiledFn buildUnmarshaler(const void *Target,
                                    const core::CompileOptions &Opts) const;

  /// Memoized variants for the per-request RPC path: one compile per
  /// format (and, for unmarshaling, per target function).
  cache::FnHandle buildMarshalerCached(
      cache::CompileService &Service,
      const core::CompileOptions &Opts = core::CompileOptions()) const;
  cache::FnHandle buildUnmarshalerCached(
      const void *Target, cache::CompileService &Service,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Tiered marshaler: interpreted immediately, machine code in the
  /// background. Call as
  /// `TF->call<void(int, int, int, int, int, std::uint8_t *)>(...)`.
  tier::TieredFnHandle buildMarshalerTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Tiered unmarshaler: answers RPC dispatch at VCODE latency and promotes
  /// the hot format's stub to ICODE in the background. Call as
  /// `TF->call<int(const std::uint8_t *)>(Buf)`.
  tier::TieredFnHandle buildUnmarshalerTiered(
      const void *Target, cache::CompileService &Service,
      tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  unsigned numArgs() const { return static_cast<unsigned>(Format.size()); }

private:
  std::string Format;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_MARSHAL_H
