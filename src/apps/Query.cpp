//===- apps/Query.cpp ------------------------------------------------------==//

#include "apps/Query.h"

#include "apps/StaticOpt.h"

#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

// The interpreter: the paper's "pair of switch statements" — one over the
// node kind / operator, one over the field selector.
#define TICKC_QUERY_INTERP_BODY                                                \
  {                                                                            \
    switch (Q->Kind) {                                                         \
    case QueryNode::And:                                                       \
      return SELF(Q->L, R) && SELF(Q->R, R);                                   \
    case QueryNode::Or:                                                        \
      return SELF(Q->L, R) || SELF(Q->R, R);                                   \
    case QueryNode::CmpField: {                                                \
      std::int32_t F = 0;                                                      \
      switch (Q->Field) {                                                      \
      case QueryNode::FAge:                                                    \
        F = R->Age;                                                            \
        break;                                                                 \
      case QueryNode::FIncome:                                                 \
        F = R->Income;                                                         \
        break;                                                                 \
      case QueryNode::FChildren:                                               \
        F = R->Children;                                                       \
        break;                                                                 \
      case QueryNode::FEducation:                                              \
        F = R->Education;                                                      \
        break;                                                                 \
      case QueryNode::FStatus:                                                 \
        F = R->Status;                                                         \
        break;                                                                 \
      }                                                                        \
      switch (Q->Op) {                                                         \
      case QueryNode::Eq:                                                      \
        return F == Q->Value;                                                  \
      case QueryNode::Ne:                                                      \
        return F != Q->Value;                                                  \
      case QueryNode::Lt:                                                      \
        return F < Q->Value;                                                   \
      case QueryNode::Le:                                                      \
        return F <= Q->Value;                                                  \
      case QueryNode::Gt:                                                      \
        return F > Q->Value;                                                   \
      case QueryNode::Ge:                                                      \
        return F >= Q->Value;                                                  \
      }                                                                        \
      return 0;                                                                \
    }                                                                          \
    }                                                                          \
    return 0;                                                                  \
  }

#define SELF interpO0
TICKC_STATIC_O0 static int interpO0(const QueryNode *Q, const Record *R)
    TICKC_QUERY_INTERP_BODY
#undef SELF

#define SELF interpO2
TICKC_STATIC_O2 static int interpO2(const QueryNode *Q, const Record *R)
    TICKC_QUERY_INTERP_BODY
#undef SELF

QueryApp::QueryApp(unsigned NumRecords, unsigned Seed) : Db(NumRecords) {
  std::mt19937 Rng(Seed);
  for (Record &R : Db) {
    R.Age = 18 + static_cast<int>(Rng() % 60);
    R.Income = static_cast<int>(Rng() % 120000);
    R.Children = static_cast<int>(Rng() % 5);
    R.Education = 8 + static_cast<int>(Rng() % 12);
    R.Status = static_cast<int>(Rng() % 4);
  }
  // (age > 40 && income < 50000) || (children == 2 && education > 12)
  //                              || status == 3     — five comparisons.
  Q[0] = {QueryNode::Or, QueryNode::FAge, QueryNode::Eq, 0, &Q[1], &Q[2]};
  Q[1] = {QueryNode::Or, QueryNode::FAge, QueryNode::Eq, 0, &Q[3], &Q[4]};
  Q[2] = {QueryNode::CmpField, QueryNode::FStatus, QueryNode::Eq, 3, nullptr,
          nullptr};
  Q[3] = {QueryNode::And, QueryNode::FAge, QueryNode::Eq, 0, &Q[5], &Q[6]};
  Q[4] = {QueryNode::And, QueryNode::FAge, QueryNode::Eq, 0, &Q[7], &Q[8]};
  Q[5] = {QueryNode::CmpField, QueryNode::FAge, QueryNode::Gt, 40, nullptr,
          nullptr};
  Q[6] = {QueryNode::CmpField, QueryNode::FIncome, QueryNode::Lt, 50000,
          nullptr, nullptr};
  Q[7] = {QueryNode::CmpField, QueryNode::FChildren, QueryNode::Eq, 2,
          nullptr, nullptr};
  Q[8] = {QueryNode::CmpField, QueryNode::FEducation, QueryNode::Gt, 12,
          nullptr, nullptr};
}

int QueryApp::countStaticO0(const QueryNode *Query) const {
  int N = 0;
  for (const Record &R : Db)
    N += interpO0(Query, &R);
  return N;
}

int QueryApp::countStaticO2(const QueryNode *Query) const {
  int N = 0;
  for (const Record &R : Db)
    N += interpO2(Query, &R);
  return N;
}

int QueryApp::matchStatic(const QueryNode *Q, const Record *R) {
  return interpO2(Q, R);
}

int QueryApp::countCompiled(int (*Match)(const Record *)) const {
  int N = 0;
  for (const Record &R : Db)
    N += Match(&R);
  return N;
}

namespace {

/// Lowers a query node to a cspec over the record parameter — the dynamic
/// query compiler.
Expr lowerQuery(Context &C, VSpec Rec, const QueryNode *Q) {
  switch (Q->Kind) {
  case QueryNode::And:
    return lowerQuery(C, Rec, Q->L) && lowerQuery(C, Rec, Q->R);
  case QueryNode::Or:
    return lowerQuery(C, Rec, Q->L) || lowerQuery(C, Rec, Q->R);
  case QueryNode::CmpField: {
    unsigned Off = 0;
    switch (Q->Field) {
    case QueryNode::FAge:
      Off = offsetof(Record, Age);
      break;
    case QueryNode::FIncome:
      Off = offsetof(Record, Income);
      break;
    case QueryNode::FChildren:
      Off = offsetof(Record, Children);
      break;
    case QueryNode::FEducation:
      Off = offsetof(Record, Education);
      break;
    case QueryNode::FStatus:
      Off = offsetof(Record, Status);
      break;
    }
    Expr Field = C.loadMem(
        MemType::I32,
        C.binary(BinOp::Add, Expr(Rec), C.longConst(Off)));
    Expr V = C.rcInt(Q->Value);
    switch (Q->Op) {
    case QueryNode::Eq:
      return Field == V;
    case QueryNode::Ne:
      return Field != V;
    case QueryNode::Lt:
      return Field < V;
    case QueryNode::Le:
      return Field <= V;
    case QueryNode::Gt:
      return Field > V;
    case QueryNode::Ge:
      return Field >= V;
    }
    break;
  }
  }
  return C.intConst(0);
}

} // namespace

CompiledFn QueryApp::specialize(const QueryNode *Query,
                                const CompileOptions &Opts) const {
  Context C;
  VSpec Rec = C.paramPtr(0);
  return compileFn(C, C.ret(lowerQuery(C, Rec, Query)), EvalType::Int, Opts);
}

cache::FnHandle QueryApp::specializeCached(const QueryNode *Query,
                                           cache::CompileService &Service,
                                           const CompileOptions &Opts) const {
  Context C;
  VSpec Rec = C.paramPtr(0);
  return Service.getOrCompile(C, C.ret(lowerQuery(C, Rec, Query)),
                              EvalType::Int, Opts);
}

cache::SpecKey QueryApp::cacheKey(const QueryNode *Query,
                                  const CompileOptions &Opts) const {
  Context C;
  VSpec Rec = C.paramPtr(0);
  return cache::buildSpecKey(C, C.ret(lowerQuery(C, Rec, Query)),
                             EvalType::Int, Opts);
}

tier::TieredFnHandle QueryApp::specializeTiered(const QueryNode *Query,
                                                cache::CompileService &Service,
                                                tier::TierManager *Manager,
                                                const CompileOptions &Opts) const {
  return Service.getOrCompileTiered(
      [Query](Context &C) {
        VSpec Rec = C.paramPtr(0);
        return C.ret(lowerQuery(C, Rec, Query));
      },
      EvalType::Int, Opts, Manager);
}
