//===- apps/BinSearch.cpp --------------------------------------------------==//

#include "apps/BinSearch.h"

#include "apps/StaticOpt.h"

#include <algorithm>
#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

#define TICKC_BSEARCH_BODY                                                     \
  {                                                                            \
    int Lo = 0, Hi = static_cast<int>(N) - 1;                                  \
    while (Lo <= Hi) {                                                         \
      int Mid = (Lo + Hi) / 2;                                                 \
      if (A[Mid] == Key)                                                       \
        return Mid;                                                            \
      if (A[Mid] < Key)                                                        \
        Lo = Mid + 1;                                                          \
      else                                                                     \
        Hi = Mid - 1;                                                          \
    }                                                                          \
    return -1;                                                                 \
  }

TICKC_STATIC_O0 static int findO0(const int *A, unsigned N, int Key)
    TICKC_BSEARCH_BODY

TICKC_STATIC_O2 static int findO2(const int *A, unsigned N, int Key)
    TICKC_BSEARCH_BODY

BinSearchApp::BinSearchApp(unsigned Count, unsigned Seed) {
  std::mt19937 Rng(Seed);
  Sorted.reserve(Count);
  int V = 0;
  for (unsigned I = 0; I < Count; ++I) {
    V += 1 + static_cast<int>(Rng() % 50);
    Sorted.push_back(V);
  }
  Absent = Sorted.back() + 7;
}

int BinSearchApp::findStaticO0(int Key) const {
  return findO0(Sorted.data(), static_cast<unsigned>(Sorted.size()), Key);
}

int BinSearchApp::findStaticO2(int Key) const {
  return findO2(Sorted.data(), static_cast<unsigned>(Sorted.size()), Key);
}

namespace {

/// Builds the decision tree for Sorted[Lo..Hi] at specification time —
/// recursion over run-time constants composing nested if cspecs.
Stmt buildTree(Context &C, VSpec Key, const std::vector<int> &Sorted, int Lo,
               int Hi) {
  if (Lo > Hi)
    return C.ret(C.intConst(-1));
  int Mid = (Lo + Hi) / 2;
  return C.block({
      C.ifStmt(Expr(Key) == C.rcInt(Sorted[static_cast<std::size_t>(Mid)]),
               C.ret(C.rcInt(Mid))),
      C.ifStmt(Expr(Key) > C.rcInt(Sorted[static_cast<std::size_t>(Mid)]),
               buildTree(C, Key, Sorted, Mid + 1, Hi),
               buildTree(C, Key, Sorted, Lo, Mid - 1)),
  });
}

} // namespace

CompiledFn BinSearchApp::specialize(const CompileOptions &Opts) const {
  Context C;
  VSpec Key = C.paramInt(0);
  Stmt Tree =
      buildTree(C, Key, Sorted, 0, static_cast<int>(Sorted.size()) - 1);
  return compileFn(C, Tree, EvalType::Int, Opts);
}

tier::TieredFnHandle
BinSearchApp::specializeTiered(cache::CompileService &Service,
                               tier::TierManager *Manager,
                               const CompileOptions &Opts) const {
  // The table values are baked into the decision tree, so the closure
  // copies them: the slot stays valid after the app goes away.
  std::vector<int> Table = Sorted;
  return Service.getOrCompileTiered(
      [Table](Context &C) {
        VSpec Key = C.paramInt(0);
        return buildTree(C, Key, Table, 0,
                         static_cast<int>(Table.size()) - 1);
      },
      EvalType::Int, Opts, Manager);
}
