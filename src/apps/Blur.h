//===- apps/Blur.h - The xv Blur experiment ----------------------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's xv case study (§6.2, "Putting it all together"): xv's Blur
/// applies a user-sized all-ones convolution matrix, so convolution is the
/// average of the neighborhood; the inner loops are bounded by the run-time
/// constant kernel size and full of boundary checks against run-time
/// constants (image extents). tcc unrolls the kernel loops and folds the
/// checks. xv itself is UI scaffolding around this kernel, so the kernel is
/// reproduced verbatim over a synthetic 640x480 image (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_BLUR_H
#define TICKC_APPS_BLUR_H

#include "core/Compile.h"

#include <cstdint>
#include <vector>

namespace tcc {
namespace apps {

class BlurApp {
public:
  BlurApp(unsigned Width = 640, unsigned Height = 480, unsigned Radius = 1,
          unsigned Seed = 9);

  void blurStaticO0(std::int32_t *Dst) const;
  void blurStaticO2(std::int32_t *Dst) const;

  /// Instantiates `void blur(int32_t *dst)` with extents, radius, and the
  /// source image hardwired; kernel loops unrolled.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  unsigned width() const { return W; }
  unsigned height() const { return H; }
  unsigned pixels() const { return W * H; }
  const std::int32_t *source() const { return Src.data(); }

private:
  unsigned W, H, R;
  std::vector<std::int32_t> Src;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_BLUR_H
