//===- apps/Heapsort.cpp ---------------------------------------------------==//

#include "apps/Heapsort.h"

#include "apps/StaticOpt.h"

#include <cstring>
#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

// Generic static heapsort: element size is a run-time parameter, elements
// move through memcpy — the paper's unspecialized baseline.
#define TICKC_HEAP_BODY                                                        \
  {                                                                            \
    char Tmp[64];                                                              \
    char *B = static_cast<char *>(Base);                                       \
    auto KeyAt = [&](int I) {                                                  \
      int K;                                                                   \
      std::memcpy(&K, B + static_cast<long>(I) * ESize, 4);                    \
      return K;                                                                \
    };                                                                         \
    auto Swap = [&](int I, int J) {                                            \
      std::memcpy(Tmp, B + static_cast<long>(I) * ESize, ESize);               \
      std::memcpy(B + static_cast<long>(I) * ESize,                            \
                  B + static_cast<long>(J) * ESize, ESize);                    \
      std::memcpy(B + static_cast<long>(J) * ESize, Tmp, ESize);               \
    };                                                                         \
    auto SiftDown = [&](int Root, int End) {                                   \
      while (2 * Root + 1 <= End) {                                            \
        int Child = 2 * Root + 1;                                              \
        if (Child + 1 <= End && KeyAt(Child) < KeyAt(Child + 1))               \
          ++Child;                                                             \
        if (KeyAt(Root) < KeyAt(Child)) {                                      \
          Swap(Root, Child);                                                   \
          Root = Child;                                                        \
        } else                                                                 \
          break;                                                               \
      }                                                                        \
    };                                                                         \
    for (int Start = N / 2 - 1; Start >= 0; --Start)                           \
      SiftDown(Start, N - 1);                                                  \
    for (int End = N - 1; End > 0; --End) {                                    \
      Swap(0, End);                                                            \
      SiftDown(0, End - 1);                                                    \
    }                                                                          \
  }

TICKC_STATIC_O0 static void heapO0(void *Base, int N, unsigned ESize)
    TICKC_HEAP_BODY

TICKC_STATIC_O2 static void heapO2(void *Base, int N, unsigned ESize)
    TICKC_HEAP_BODY

HeapsortApp::HeapsortApp(unsigned Count, unsigned Seed) : Data(Count) {
  std::mt19937 Rng(Seed);
  for (HeapRecord &R : Data) {
    R.Key = static_cast<int>(Rng() % 1000000);
    R.Payload[0] = static_cast<int>(Rng());
    R.Payload[1] = static_cast<int>(Rng());
  }
}

void HeapsortApp::sortStaticO0(HeapRecord *A) const {
  heapO0(A, static_cast<int>(Data.size()), sizeof(HeapRecord));
}

void HeapsortApp::sortStaticO2(HeapRecord *A) const {
  heapO2(A, static_cast<int>(Data.size()), sizeof(HeapRecord));
}

namespace {

/// Builds the specialized sort (element count and 12-byte swap hardwired)
/// into \p C.
Stmt buildHeapsortSpec(Context &C, int N) {
  constexpr int ESize = sizeof(HeapRecord);
  VSpec Base = C.paramPtr(0);
  VSpec Root = C.localInt(), Child = C.localInt(), End = C.localInt(),
        Start = C.localInt();
  VSpec AddrA = C.localPtr(), AddrB = C.localPtr();
  VSpec T1 = C.localInt(), T2 = C.localInt();

  // addr(i) = base + i * $esize — the index scaling strength-reduces.
  auto Addr = [&](Expr I) {
    return C.binary(BinOp::Add, Expr(Base),
                    C.toLong(I) * C.rcLong(ESize));
  };
  auto KeyAt = [&](Expr I) { return C.loadMem(MemType::I32, Addr(I)); };

  // The specialized swap cspec: ESize/4 word moves, unrolled at
  // specification time — the paper's "code fragment to swap the contents
  // of two memory regions" composed into the sort.
  auto Swap = [&](Expr I, Expr J) {
    std::vector<Stmt> Moves;
    Moves.push_back(C.assign(AddrA, Addr(I)));
    Moves.push_back(C.assign(AddrB, Addr(J)));
    for (int W = 0; W < ESize / 4; ++W) {
      Expr OffA = C.binary(BinOp::Add, Expr(AddrA), C.rcLong(4 * W));
      Expr OffB = C.binary(BinOp::Add, Expr(AddrB), C.rcLong(4 * W));
      Moves.push_back(C.assign(T1, C.loadMem(MemType::I32, OffA)));
      Moves.push_back(C.assign(T2, C.loadMem(MemType::I32, OffB)));
      Moves.push_back(C.storeMem(MemType::I32, OffA, Expr(T2)));
      Moves.push_back(C.storeMem(MemType::I32, OffB, Expr(T1)));
    }
    return C.block(Moves);
  };

  // siftDown(root, end) with both phases sharing the body via a spec-time
  // helper (composition again).
  auto SiftDown = [&](Expr RootInit, Expr EndV) {
    Stmt Body = C.block({
        C.assign(Child, Expr(Root) * C.intConst(2) + C.intConst(1)),
        C.ifStmt(Expr(Child) > EndV, C.breakStmt()),
        C.ifStmt((Expr(Child) + C.intConst(1) <= EndV) &&
                     (KeyAt(Expr(Child)) <
                      KeyAt(Expr(Child) + C.intConst(1))),
                 C.assign(Child, Expr(Child) + C.intConst(1))),
        C.ifStmt(KeyAt(Expr(Root)) < KeyAt(Expr(Child)),
                 C.block({Swap(Expr(Root), Expr(Child)),
                          C.assign(Root, Expr(Child))}),
                 C.breakStmt()),
    });
    return C.block({C.assign(Root, RootInit),
                    C.whileStmt(C.intConst(1), Body)});
  };

  Stmt Phase1 = C.block({
      C.assign(Start, C.rcInt(N / 2 - 1)),
      C.whileStmt(Expr(Start) >= C.intConst(0),
                  C.block({SiftDown(Expr(Start), C.rcInt(N - 1)),
                           C.assign(Start, Expr(Start) - C.intConst(1))})),
  });
  Stmt Phase2 = C.block({
      C.assign(End, C.rcInt(N - 1)),
      C.whileStmt(Expr(End) > C.intConst(0),
                  C.block({Swap(C.intConst(0), Expr(End)),
                           SiftDown(C.intConst(0),
                                    Expr(End) - C.intConst(1)),
                           C.assign(End, Expr(End) - C.intConst(1))})),
  });
  return C.block({Phase1, Phase2, C.retVoid()});
}

} // namespace

CompiledFn HeapsortApp::specialize(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildHeapsortSpec(C, static_cast<int>(Data.size())),
                   EvalType::Void, Opts);
}

tier::TieredFnHandle
HeapsortApp::specializeTiered(cache::CompileService &Service,
                              tier::TierManager *Manager,
                              const CompileOptions &Opts) const {
  int N = static_cast<int>(Data.size());
  return Service.getOrCompileTiered(
      [N](Context &C) { return buildHeapsortSpec(C, N); }, EvalType::Void,
      Opts, Manager);
}
