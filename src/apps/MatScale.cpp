//===- apps/MatScale.cpp ---------------------------------------------------==//

#include "apps/MatScale.h"

#include "apps/StaticOpt.h"

#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

#define TICKC_MS_BODY                                                          \
  {                                                                            \
    for (unsigned I = 0; I < N; ++I)                                           \
      M[I] = M[I] * Factor;                                                    \
  }

TICKC_STATIC_O0 static void scaleO0(int *M, unsigned N, int Factor)
    TICKC_MS_BODY

TICKC_STATIC_O2 static void scaleO2(int *M, unsigned N, int Factor)
    TICKC_MS_BODY

MatScaleApp::MatScaleApp(unsigned Dim, int Factor, unsigned Seed)
    : Dim(Dim), Factor(Factor), Data(Dim * Dim) {
  std::mt19937 Rng(Seed);
  for (int &V : Data)
    V = static_cast<int>(Rng() % 1000) - 500;
}

void MatScaleApp::scaleStaticO0(int *M) const { scaleO0(M, elems(), Factor); }
void MatScaleApp::scaleStaticO2(int *M) const { scaleO2(M, elems(), Factor); }

namespace {

/// Builds the scale-loop body into \p C.
Stmt buildMatScaleSpec(Context &C, unsigned Elems, int Factor) {
  VSpec M = C.paramPtr(0);
  VSpec I = C.localInt();
  // for (i = 0; i < $n; ++i) m[i] = m[i] * $factor;
  Stmt Body = C.storeIndex(
      Expr(M), Expr(I), MemType::I32,
      C.index(Expr(M), Expr(I), MemType::I32) * C.rcInt(Factor));
  return C.block({
      C.forStmt(I, C.intConst(0), CmpKind::LtS,
                C.rcInt(static_cast<int>(Elems)), C.intConst(1), Body),
      C.retVoid(),
  });
}

/// The element count is large, so the loop stays a loop (the unroll limit
/// guards against pathological code growth, paper §4.4); the multiply by
/// the run-time constant factor strength-reduces.
CompileOptions msOptions(const CompileOptions &Opts) {
  CompileOptions O = Opts;
  O.UnrollLimit = 64;
  return O;
}

} // namespace

CompiledFn MatScaleApp::specialize(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildMatScaleSpec(C, elems(), Factor), EvalType::Void,
                   msOptions(Opts));
}

tier::TieredFnHandle
MatScaleApp::specializeTiered(cache::CompileService &Service,
                              tier::TierManager *Manager,
                              const CompileOptions &Opts) const {
  unsigned N = elems();
  int F = Factor;
  return Service.getOrCompileTiered(
      [N, F](Context &C) { return buildMatScaleSpec(C, N, F); },
      EvalType::Void, msOptions(Opts), Manager);
}
