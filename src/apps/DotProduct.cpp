//===- apps/DotProduct.cpp -------------------------------------------------==//

#include "apps/DotProduct.h"

#include "apps/StaticOpt.h"

#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

#define TICKC_DP_BODY                                                          \
  {                                                                            \
    int Sum = 0;                                                               \
    for (unsigned K = 0; K < N; ++K)                                           \
      if (Row[K])                                                              \
        Sum += Col[K] * Row[K];                                                \
    return Sum;                                                                \
  }

TICKC_STATIC_O0 static int dotO0(const int *Col, const int *Row, unsigned N)
    TICKC_DP_BODY

TICKC_STATIC_O2 static int dotO2(const int *Col, const int *Row, unsigned N)
    TICKC_DP_BODY

DotProductApp::DotProductApp(unsigned N, double ZeroFraction, unsigned Seed) {
  std::mt19937 Rng(Seed);
  Row.resize(N);
  for (int &V : Row) {
    if (static_cast<double>(Rng() % 1000) / 1000.0 < ZeroFraction)
      V = 0;
    else
      V = static_cast<int>(Rng() % 16) + 1; // Small: strength-reducible.
  }
}

int DotProductApp::dotStaticO0(const int *Col) const {
  return dotO0(Col, Row.data(), size());
}

int DotProductApp::dotStaticO2(const int *Col) const {
  return dotO2(Col, Row.data(), size());
}

namespace {

/// The §4.4 spec, shared by specialize() and the tiered rebuild closure.
Stmt buildDotSpec(Context &C, const int *RowData, unsigned N) {
  // `{ int k, sum = 0;
  //    for (k = 0; k < $n; k++) if ($row[k]) sum += col[k] * $row[k];
  //    return sum; }                                 (paper §4.4, verbatim)
  VSpec Col = C.paramPtr(0);
  VSpec K = C.localInt();
  VSpec Sum = C.localInt();
  Expr RowK = C.rtEval(C.index(C.rcPtr(RowData), Expr(K), MemType::I32));
  Stmt Body =
      C.ifStmt(RowK != C.intConst(0),
               C.assign(Sum, Expr(Sum) +
                                 C.index(Expr(Col), Expr(K), MemType::I32) *
                                     RowK));
  return C.block({
      C.assign(Sum, C.intConst(0)),
      C.forStmt(K, C.intConst(0), CmpKind::LtS,
                C.rcInt(static_cast<int>(N)), C.intConst(1), Body),
      C.ret(Sum),
  });
}

} // namespace

CompiledFn DotProductApp::specialize(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildDotSpec(C, Row.data(), size()), EvalType::Int,
                   Opts);
}

tier::TieredFnHandle
DotProductApp::specializeTiered(cache::CompileService &Service,
                                tier::TierManager *Manager,
                                const CompileOptions &Opts) const {
  const int *RowData = Row.data();
  unsigned N = size();
  return Service.getOrCompileTiered(
      [RowData, N](Context &C) { return buildDotSpec(C, RowData, N); },
      EvalType::Int, Opts, Manager);
}
