//===- apps/Hash.cpp -------------------------------------------------------==//

#include "apps/Hash.h"

#include "apps/StaticOpt.h"

#include <cassert>
#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

// The static lookup body, stamped once per optimization level. Keys are
// positive and the multiplier small, so the signed modulo agrees with the
// unsigned one and with the dynamic version's strength-reduced form.
#define TICKC_HASH_LOOKUP_BODY                                                 \
  {                                                                            \
    int H = (Key * HashApp::Multiplier) % static_cast<int>(Size);             \
    while (Keys[H] != HashApp::Empty && Keys[H] != Key)                        \
      H = (H + 1) % static_cast<int>(Size);                                    \
    return Keys[H] == Key ? Vals[H] : -1;                                      \
  }

TICKC_STATIC_O0 static int lookupO0(const int *Keys, const int *Vals,
                                    unsigned Size, int Key)
    TICKC_HASH_LOOKUP_BODY

TICKC_STATIC_O2 static int lookupO2(const int *Keys, const int *Vals,
                                    unsigned Size, int Key)
    TICKC_HASH_LOOKUP_BODY

HashApp::HashApp(unsigned TableSize, unsigned NumEntries, unsigned Seed)
    : Size(TableSize), Keys(TableSize, Empty), Vals(TableSize, 0) {
  assert((TableSize & (TableSize - 1)) == 0 && "table size must be 2^k");
  assert(NumEntries < TableSize && "table must not be full");
  std::mt19937 Rng(Seed);
  unsigned Inserted = 0;
  while (Inserted < NumEntries) {
    int Key = static_cast<int>(Rng() % 1000000) + 1;
    int H = (Key * Multiplier) % static_cast<int>(Size);
    bool Dup = false;
    while (Keys[H] != Empty) {
      if (Keys[H] == Key) {
        Dup = true;
        break;
      }
      H = (H + 1) % static_cast<int>(Size);
    }
    if (Dup)
      continue;
    Keys[H] = Key;
    Vals[H] = Key * 2 + 1;
    if (Inserted == NumEntries / 2)
      PresentKey = Key;
    ++Inserted;
  }
  AbsentKey = 1000001;
  while (true) {
    bool Clash = false;
    for (int K : Keys)
      Clash |= K == AbsentKey;
    if (!Clash)
      break;
    ++AbsentKey;
  }
}

int HashApp::lookupStaticO0(int Key) const {
  return lookupO0(Keys.data(), Vals.data(), Size, Key);
}

int HashApp::lookupStaticO2(int Key) const {
  return lookupO2(Keys.data(), Vals.data(), Size, Key);
}

namespace {

/// Builds the specialized-lookup body into \p C.
Stmt buildHashSpec(Context &C, const int *KeysData, const int *ValsData,
                   unsigned Size) {
  VSpec Key = C.paramInt(0);
  VSpec H = C.localInt();
  VSpec Probe = C.localInt();
  Expr KeysBase = C.rcPtr(KeysData);
  Expr ValsBase = C.rcPtr(ValsData);
  auto SizeC = [&] { return C.rcInt(static_cast<int>(Size)); };

  // h = (key * $M) % $S;   — multiplier and size become immediates; the
  // multiply and modulo strength-reduce (shift/add and mask-style code).
  Stmt Init = C.assign(
      H, (Expr(Key) * C.rcInt(HashApp::Multiplier)) % SizeC());
  // while (keys[h] != EMPTY && keys[h] != key) h = (h + 1) % $S;
  Expr KeyAtH = C.index(KeysBase, Expr(H), MemType::I32);
  Expr Continue =
      (KeyAtH != C.rcInt(HashApp::Empty)) && (KeyAtH != Expr(Key));
  Stmt Loop = C.whileStmt(
      Continue, C.assign(H, (Expr(H) + C.intConst(1)) % SizeC()));
  // return keys[h] == key ? vals[h] : -1;
  Stmt Tail = C.block({
      C.assign(Probe, C.index(KeysBase, Expr(H), MemType::I32)),
      C.ifStmt(Expr(Probe) == Expr(Key),
               C.ret(C.index(ValsBase, Expr(H), MemType::I32)),
               C.ret(C.intConst(-1))),
  });
  return C.block({Init, Loop, Tail});
}

} // namespace

CompiledFn HashApp::specialize(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildHashSpec(C, Keys.data(), Vals.data(), Size),
                   EvalType::Int, Opts);
}

cache::FnHandle HashApp::specializeCached(cache::CompileService &Service,
                                          const CompileOptions &Opts) const {
  // The table base addresses and size are captured as run-time constants,
  // so two HashApps cached through one service can never collide.
  Context C;
  return Service.getOrCompile(C, buildHashSpec(C, Keys.data(), Vals.data(),
                                               Size),
                              EvalType::Int, Opts);
}

tier::TieredFnHandle
HashApp::specializeTiered(cache::CompileService &Service,
                          tier::TierManager *Manager,
                          const CompileOptions &Opts) const {
  const int *KeysData = Keys.data();
  const int *ValsData = Vals.data();
  unsigned S = Size;
  return Service.getOrCompileTiered(
      [KeysData, ValsData, S](Context &C) {
        return buildHashSpec(C, KeysData, ValsData, S);
      },
      EvalType::Int, Opts, Manager);
}
