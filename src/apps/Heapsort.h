//===- apps/Heapsort.h - Heapsort with a specialized swap -------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `heap` benchmark (§6.2, "Parameterized functions"): a
/// heapsort "parameterized with a code fragment to swap the contents of two
/// memory regions of arbitrary size", specialized to the element size it
/// sorts. The experiment sorts 500 12-byte records; the static version
/// swaps through memcpy with a run-time element size.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_HEAPSORT_H
#define TICKC_APPS_HEAPSORT_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <cstdint>
#include <vector>

namespace tcc {
namespace apps {

/// The 12-byte record of the paper's experiment; sorted by Key.
struct HeapRecord {
  std::int32_t Key;
  std::int32_t Payload[2];
};
static_assert(sizeof(HeapRecord) == 12, "paper sorts 12-byte structures");

class HeapsortApp {
public:
  explicit HeapsortApp(unsigned Count = 500, unsigned Seed = 8);

  void sortStaticO0(HeapRecord *A) const;
  void sortStaticO2(HeapRecord *A) const;

  /// Instantiates `void sort(HeapRecord *a)` with the element count and a
  /// 12-byte swap specialized into the sort.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Tiered instantiation: interpreted immediately, machine code in the
  /// background. Call as `TF->call<void(HeapRecord *)>(A)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  std::vector<HeapRecord> data() const { return Data; }
  unsigned count() const { return static_cast<unsigned>(Data.size()); }

private:
  std::vector<HeapRecord> Data;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_HEAPSORT_H
