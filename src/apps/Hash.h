//===- apps/Hash.h - Run-time-constant hash table lookup -------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `hash` benchmark (§6.2, "Run-time constants"): a generic
/// open-addressing hash table whose size and scatter multiplier are fixed
/// at run time. The `C version hardwires both into the instruction stream,
/// strength-reducing the multiply and the modulo; the static version loads
/// them from memory and divides. The experiment looks up two values, one
/// present and one absent.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_HASH_H
#define TICKC_APPS_HASH_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <vector>

namespace tcc {
namespace apps {

class HashApp {
public:
  /// Builds a table of \p NumEntries entries in a \p TableSize-slot table
  /// (TableSize must be a power of two).
  HashApp(unsigned TableSize = 1024, unsigned NumEntries = 512,
          unsigned Seed = 1);

  /// Non-optimized static baseline (the paper's lcc stand-in).
  int lookupStaticO0(int Key) const;
  /// Optimized static baseline (the gcc stand-in).
  int lookupStaticO2(int Key) const;

  /// Instantiates `int lookup(int key)` with table base, size, and
  /// multiplier as run-time constants.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Memoized instantiation keyed on the captured table addresses, size,
  /// and multiplier.
  cache::FnHandle specializeCached(
      cache::CompileService &Service,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Tiered instantiation: VCODE lookup immediately, ICODE once hot. The
  /// HashApp must outlive the returned slot (the promotion re-captures the
  /// table addresses). Call as `TF->call<int(int)>(Key)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  int presentKey() const { return PresentKey; }
  int absentKey() const { return AbsentKey; }
  unsigned tableSize() const { return Size; }

  static constexpr int Empty = -1;
  static constexpr int Multiplier = 17;

private:
  unsigned Size;
  std::vector<int> Keys;
  std::vector<int> Vals;
  int PresentKey = 0;
  int AbsentKey = 0;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_HASH_H
