//===- apps/StaticOpt.h - Per-function optimization control ----*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper measures each benchmark's static version twice: compiled by
/// lcc (non-optimizing) and by GNU CC (optimizing). We reproduce the
/// bracket with per-function optimization levels: TICKC_STATIC_O0 stands in
/// for lcc, TICKC_STATIC_O2 for gcc. Each benchmark stamps its body once
/// per level through a macro so that no code is shared (inlining across
/// levels would blur the comparison).
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_STATICOPT_H
#define TICKC_APPS_STATICOPT_H

// Auto-vectorization is disabled in the optimizing stand-in: the paper's
// 1996-era GNU CC predates SIMD ISAs, and leaving it on would compare
// scalar dynamic code against vector static code — a dimension orthogonal
// to dynamic compilation. EXPERIMENTS.md reports this calibration.
#define TICKC_STATIC_O0 __attribute__((optimize("O0"), noinline))
#define TICKC_STATIC_O2                                                        \
  __attribute__((optimize("O2", "no-tree-vectorize", "no-tree-slp-vectorize"),\
                 noinline))

#endif // TICKC_APPS_STATICOPT_H
