//===- apps/DotProduct.h - Sparse dot product with rt-const row -*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `dp` benchmark — the running example of §4.4: the dot
/// product of a vector with a run-time constant row. The dynamic version
/// unrolls the loop over the row, skips zero entries entirely (dead code
/// elimination on `$row[k]`), and strength-reduces the multiplies by the
/// hardwired coefficients, yielding straight-line code with "no branches
/// and no loop induction variable".
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_DOTPRODUCT_H
#define TICKC_APPS_DOTPRODUCT_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <vector>

namespace tcc {
namespace apps {

class DotProductApp {
public:
  /// Builds a length-\p N run-time-constant row with roughly the given
  /// fraction of zero entries.
  DotProductApp(unsigned N = 64, double ZeroFraction = 0.5,
                unsigned Seed = 4);

  int dotStaticO0(const int *Col) const;
  int dotStaticO2(const int *Col) const;

  /// Instantiates `int dot(const int *col)` via the paper's dynamically
  /// unrolled formulation.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Tiered instantiation. This spec `$`-evaluates the row at instantiation
  /// time, so it is never memoized (SpecKey::Cacheable is false) — the slot
  /// is per-call-site and the promotion re-reads the row through this app,
  /// which must stay alive (and unchanged) until promotion completes. Call
  /// as `TF->call<int(const int *)>(Col)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  unsigned size() const { return static_cast<unsigned>(Row.size()); }
  const std::vector<int> &row() const { return Row; }

private:
  std::vector<int> Row;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_DOTPRODUCT_H
