//===- apps/Marshal.cpp ----------------------------------------------------==//

#include "apps/Marshal.h"

#include "apps/StaticOpt.h"
#include "support/Error.h"

#include <cstring>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

#define TICKC_MSHL_BODY                                                        \
  {                                                                            \
    std::memcpy(Buf + 0, &A0, 4);                                              \
    std::memcpy(Buf + 4, &A1, 4);                                              \
    std::memcpy(Buf + 8, &A2, 4);                                              \
    std::memcpy(Buf + 12, &A3, 4);                                             \
    std::memcpy(Buf + 16, &A4, 4);                                             \
  }

TICKC_STATIC_O0 void MarshalApp::marshal5StaticO0(std::uint8_t *Buf, int A0,
                                                  int A1, int A2, int A3,
                                                  int A4) TICKC_MSHL_BODY

TICKC_STATIC_O2 void MarshalApp::marshal5StaticO2(std::uint8_t *Buf, int A0,
                                                  int A1, int A2, int A3,
                                                  int A4) TICKC_MSHL_BODY

#define TICKC_UMSHL_BODY                                                       \
  {                                                                            \
    int A[5];                                                                  \
    std::memcpy(A, Buf, 20);                                                   \
    return Fn(A[0], A[1], A[2], A[3], A[4]);                                   \
  }

TICKC_STATIC_O0 int
MarshalApp::unmarshal5StaticO0(const std::uint8_t *Buf,
                               int (*Fn)(int, int, int, int, int))
    TICKC_UMSHL_BODY

TICKC_STATIC_O2 int
MarshalApp::unmarshal5StaticO2(const std::uint8_t *Buf,
                               int (*Fn)(int, int, int, int, int))
    TICKC_UMSHL_BODY

namespace {

/// Builds `void marshal(a0..an-1, buf)` from the format string.
Stmt buildMarshalSpec(Context &C, const std::string &Format) {
  // The generated function's signature is derived from the format string
  // at run time: args 0..n-1 are the values, arg n is the buffer.
  std::vector<Stmt> Stores;
  unsigned N = static_cast<unsigned>(Format.size());
  VSpec Buf = C.paramPtr(N);
  for (unsigned I = 0; I < N; ++I) {
    if (Format[I] != 'i')
      reportFatalError("marshal format supports 'i' arguments");
    VSpec Arg = C.paramInt(I);
    Stores.push_back(C.storeMem(
        MemType::I32,
        C.binary(BinOp::Add, Expr(Buf), C.rcLong(4 * I)), Expr(Arg)));
  }
  Stores.push_back(C.retVoid());
  return C.block(Stores);
}

/// Builds `int unmarshal(buf)` — unpack and call \p Target.
Stmt buildUnmarshalSpec(Context &C, const std::string &Format,
                        const void *Target) {
  VSpec Buf = C.paramPtr(0);
  std::vector<Expr> Args;
  for (unsigned I = 0; I < static_cast<unsigned>(Format.size()); ++I) {
    if (Format[I] != 'i')
      reportFatalError("marshal format supports 'i' arguments");
    Args.push_back(C.loadMem(
        MemType::I32,
        C.binary(BinOp::Add, Expr(Buf), C.rcLong(4 * I))));
  }
  // The call with a run-time determined argument count — impossible to
  // write in ANSI C.
  return C.ret(C.callC(Target, EvalType::Int, Args));
}

} // namespace

CompiledFn MarshalApp::buildMarshaler(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildMarshalSpec(C, Format), EvalType::Void, Opts);
}

CompiledFn MarshalApp::buildUnmarshaler(const void *Target,
                                        const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildUnmarshalSpec(C, Format, Target), EvalType::Int,
                   Opts);
}

cache::FnHandle
MarshalApp::buildMarshalerCached(cache::CompileService &Service,
                                 const CompileOptions &Opts) const {
  Context C;
  return Service.getOrCompile(C, buildMarshalSpec(C, Format), EvalType::Void,
                              Opts);
}

cache::FnHandle
MarshalApp::buildUnmarshalerCached(const void *Target,
                                   cache::CompileService &Service,
                                   const CompileOptions &Opts) const {
  Context C;
  return Service.getOrCompile(C, buildUnmarshalSpec(C, Format, Target),
                              EvalType::Int, Opts);
}

tier::TieredFnHandle
MarshalApp::buildMarshalerTiered(cache::CompileService &Service,
                                 tier::TierManager *Manager,
                                 const CompileOptions &Opts) const {
  std::string F = Format;
  return Service.getOrCompileTiered(
      [F](Context &C) { return buildMarshalSpec(C, F); }, EvalType::Void,
      Opts, Manager);
}

tier::TieredFnHandle
MarshalApp::buildUnmarshalerTiered(const void *Target,
                                   cache::CompileService &Service,
                                   tier::TierManager *Manager,
                                   const CompileOptions &Opts) const {
  std::string F = Format;
  return Service.getOrCompileTiered(
      [F, Target](Context &C) { return buildUnmarshalSpec(C, F, Target); },
      EvalType::Int, Opts, Manager);
}
