//===- apps/BinSearch.h - Executable data structures ------------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `binary` benchmark (§6.2, "Code construction"): compile a
/// sorted array *into code* — a tree of nested ifs comparing against
/// immediates, so lookups perform "neither memory loads nor looping
/// overhead". The experiment looks up two entries, one present, one not,
/// in a 16-entry table.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_BINSEARCH_H
#define TICKC_APPS_BINSEARCH_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <vector>

namespace tcc {
namespace apps {

class BinSearchApp {
public:
  explicit BinSearchApp(unsigned Count = 16, unsigned Seed = 3);

  /// Standard binary search over the array; returns index or -1.
  int findStaticO0(int Key) const;
  int findStaticO2(int Key) const;

  /// Instantiates `int find(int key)` as a nested-if decision tree with
  /// the array values hardwired into the instruction stream.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Tiered instantiation: interpreted immediately, machine code in the
  /// background. Call as `TF->call<int(int)>(Key)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  int presentKey() const { return Sorted[Sorted.size() / 3]; }
  int absentKey() const { return Absent; }
  const std::vector<int> &data() const { return Sorted; }

private:
  std::vector<int> Sorted;
  int Absent;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_BINSEARCH_H
