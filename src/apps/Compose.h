//===- apps/Compose.h - Composed message-pipeline operations ----*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `cmp` benchmark (§6.2, "Function composition"): copy a
/// 4096-byte message buffer while computing a checksum and a byteswap in
/// the same pass. The static version calls the two data operations through
/// function pointers per word; the `C version splices both cspecs into one
/// copying loop — the networking-stack integrated-layer-processing story.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_COMPOSE_H
#define TICKC_APPS_COMPOSE_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <cstdint>
#include <vector>

namespace tcc {
namespace apps {

class ComposeApp {
public:
  explicit ComposeApp(unsigned Bytes = 4096, unsigned Seed = 5);

  /// Copies Src to Dst (word-at-a-time), byteswapping each word and
  /// accumulating a checksum; returns the checksum.
  std::uint32_t pipeStaticO0(std::uint32_t *Dst) const;
  std::uint32_t pipeStaticO2(std::uint32_t *Dst) const;

  /// Instantiates `int pipe(uint32_t *dst)` with both data operations
  /// composed into the copy loop.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Tiered instantiation: interpreted immediately, machine code in the
  /// background. The ComposeApp must outlive the returned slot. Call as
  /// `TF->call<int(std::uint32_t *)>(Dst)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  unsigned words() const { return static_cast<unsigned>(Src.size()); }
  const std::uint32_t *source() const { return Src.data(); }

private:
  std::vector<std::uint32_t> Src;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_COMPOSE_H
