//===- apps/Newton.cpp -----------------------------------------------------==//

#include "apps/Newton.h"

#include "apps/StaticOpt.h"

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

// The parameterized pieces, reached through function pointers in the static
// versions (the paper's point: indirect calls block inlining).
static double fOf(double X) { return (X + 1) * (X + 1) * (X + 1); }
static double fPrimeOf(double X) { return 3 * (X + 1) * (X + 1); }

#define TICKC_NTN_BODY                                                         \
  {                                                                            \
    double X = X0;                                                             \
    for (unsigned I = 0; I < MaxIter; ++I) {                                   \
      double FX = F(X);                                                        \
      if (FX < Tol && FX > -Tol)                                               \
        break;                                                                 \
      X = X - FX / FP(X);                                                      \
    }                                                                          \
    return X;                                                                  \
  }

TICKC_STATIC_O0 static double solveO0(double X0, double Tol, unsigned MaxIter,
                                      double (*F)(double),
                                      double (*FP)(double)) TICKC_NTN_BODY

TICKC_STATIC_O2 static double solveO2(double X0, double Tol, unsigned MaxIter,
                                      double (*F)(double),
                                      double (*FP)(double)) TICKC_NTN_BODY

double NewtonApp::solveStaticO0(double X0) const {
  return solveO0(X0, Tol, MaxIter, &fOf, &fPrimeOf);
}

double NewtonApp::solveStaticO2(double X0) const {
  return solveO2(X0, Tol, MaxIter, &fOf, &fPrimeOf);
}

namespace {

/// Builds the solver with f and f' spliced into the loop into \p C.
Stmt buildNewtonSpec(Context &C, double Tol, unsigned MaxIter) {
  VSpec X0 = C.paramDouble(0);
  VSpec X = C.localDouble();
  VSpec FX = C.localDouble();
  VSpec T = C.localDouble();
  VSpec One = C.localDouble(), Three = C.localDouble();
  VSpec TolHi = C.localDouble(), TolLo = C.localDouble();
  VSpec I = C.localInt();

  // The cspecs a client would hand to the solver; composition splices them
  // into the loop body — "dynamically inline the code referenced by
  // arbitrary function pointers" (paper §6.2). Constants are hoisted into
  // locals once, outside the loop, as a `C programmer would write them.
  auto FSpec = [&](Expr /*V: T = V+1 precomputed*/) {
    return Expr(T) * Expr(T) * Expr(T);
  };
  auto FPrimeSpec = [&] { return Expr(Three) * Expr(T) * Expr(T); };

  Stmt Body = C.block({
      C.assign(T, Expr(X) + Expr(One)),
      C.assign(FX, FSpec(Expr(X))),
      C.ifStmt((Expr(FX) < Expr(TolHi)) && (Expr(FX) > Expr(TolLo)),
               C.breakStmt()),
      C.assign(X, Expr(X) - Expr(FX) / FPrimeSpec()),
  });
  Stmt Fn = C.block({
      C.assign(X, Expr(X0)),
      C.assign(One, C.doubleConst(1.0)),
      C.assign(Three, C.doubleConst(3.0)),
      C.assign(TolHi, C.rcDouble(Tol)),
      C.assign(TolLo, C.rcDouble(-Tol)),
      C.forStmt(I, C.intConst(0), CmpKind::LtS,
                C.intConst(static_cast<int>(MaxIter)), C.intConst(1), Body),
      C.ret(X),
  });
  return Fn;
}

/// MaxIter is a plain constant; keep the loop rolled like the baseline.
CompileOptions ntnOptions(const CompileOptions &Opts) {
  CompileOptions O = Opts;
  O.UnrollLimit = 0;
  return O;
}

} // namespace

CompiledFn NewtonApp::specialize(const CompileOptions &Opts) const {
  Context C;
  return compileFn(C, buildNewtonSpec(C, Tol, MaxIter), EvalType::Double,
                   ntnOptions(Opts));
}

tier::TieredFnHandle
NewtonApp::specializeTiered(cache::CompileService &Service,
                            tier::TierManager *Manager,
                            const CompileOptions &Opts) const {
  double T = Tol;
  unsigned MI = MaxIter;
  return Service.getOrCompileTiered(
      [T, MI](Context &C) { return buildNewtonSpec(C, T, MI); },
      EvalType::Double, ntnOptions(Opts), Manager);
}
