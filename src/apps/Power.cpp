//===- apps/Power.cpp ------------------------------------------------------==//

#include "apps/Power.h"

#include "apps/StaticOpt.h"

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

#define TICKC_POW_BODY                                                         \
  {                                                                            \
    int R = 1;                                                                 \
    int B = X;                                                                 \
    unsigned E = N;                                                            \
    while (E) {                                                                \
      if (E & 1)                                                               \
        R = R * B;                                                             \
      B = B * B;                                                               \
      E >>= 1;                                                                 \
    }                                                                          \
    return R;                                                                  \
  }

TICKC_STATIC_O0 static int powO0(int X, unsigned N) TICKC_POW_BODY

TICKC_STATIC_O2 static int powO2(int X, unsigned N) TICKC_POW_BODY

int PowerApp::powStaticO0(int X) const { return powO0(X, Exponent); }
int PowerApp::powStaticO2(int X) const { return powO2(X, Exponent); }

namespace {

/// Builds the square-and-multiply chain into \p C and returns the body.
Stmt buildPowerSpec(Context &C, unsigned Exponent) {
  VSpec X = C.paramInt(0);
  VSpec Base = C.localInt();
  VSpec Acc = C.localInt();
  // The exponent loop runs at specification time; each iteration composes
  // one multiply *statement*, so the squarings interleave correctly with
  // the accumulating multiplies.
  std::vector<Stmt> Steps;
  Steps.push_back(C.assign(Base, Expr(X)));
  bool HaveAcc = false;
  unsigned E = Exponent;
  while (E) {
    if (E & 1) {
      Steps.push_back(C.assign(
          Acc, HaveAcc ? Expr(Acc) * Expr(Base) : Expr(Base)));
      HaveAcc = true;
    }
    E >>= 1;
    if (E)
      Steps.push_back(C.assign(Base, Expr(Base) * Expr(Base)));
  }
  if (!HaveAcc)
    Steps.push_back(C.assign(Acc, C.intConst(1))); // x^0
  Steps.push_back(C.ret(Acc));
  return C.block(Steps);
}

} // namespace

CompiledFn PowerApp::specialize(const CompileOptions &Opts) const {
  // Square-and-multiply composed at specification time: the exponent loop
  // runs *now*, leaving only multiplies in the dynamic code — exactly the
  // `C cspec-composition formulation of partial evaluation.
  Context C;
  return compileFn(C, buildPowerSpec(C, Exponent), EvalType::Int, Opts);
}

cache::FnHandle PowerApp::specializeCached(cache::CompileService &Service,
                                           const CompileOptions &Opts) const {
  Context C;
  return Service.getOrCompile(C, buildPowerSpec(C, Exponent), EvalType::Int,
                              Opts);
}

cache::SpecKey PowerApp::cacheKey(const CompileOptions &Opts) const {
  Context C;
  return cache::buildSpecKey(C, buildPowerSpec(C, Exponent), EvalType::Int,
                             Opts);
}

tier::TieredFnHandle
PowerApp::specializeTiered(cache::CompileService &Service,
                           tier::TierManager *Manager,
                           const CompileOptions &Opts) const {
  unsigned E = Exponent;
  return Service.getOrCompileTiered(
      [E](Context &C) { return buildPowerSpec(C, E); }, EvalType::Int, Opts,
      Manager);
}
