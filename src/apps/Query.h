//===- apps/Query.h - Small query-language compilation ----------*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `query` benchmark (§6.2, "Small language compilation"): a
/// query language of boolean expressions over record fields. The static
/// version interprets queries "using a pair of switch statements"; the `C
/// version compiles each query to machine code and scans the database with
/// it. The experiment runs a five-comparison query over 2000 records.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_QUERY_H
#define TICKC_APPS_QUERY_H

#include "cache/CompileService.h"
#include "core/Compile.h"

#include <cstdint>
#include <vector>

namespace tcc {
namespace apps {

/// One database record.
struct Record {
  std::int32_t Age;
  std::int32_t Income;
  std::int32_t Children;
  std::int32_t Education;
  std::int32_t Status;
};

/// Query AST: either a field comparison or a boolean combination.
struct QueryNode {
  enum KindT : std::uint8_t { CmpField, And, Or } Kind;
  // CmpField:
  enum FieldT : std::uint8_t {
    FAge,
    FIncome,
    FChildren,
    FEducation,
    FStatus
  } Field = FAge;
  enum OpT : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge } Op = Eq;
  std::int32_t Value = 0;
  // And/Or:
  const QueryNode *L = nullptr;
  const QueryNode *R = nullptr;
};

class QueryApp {
public:
  explicit QueryApp(unsigned NumRecords = 2000, unsigned Seed = 6);

  /// The paper-style benchmark query: five binary comparisons.
  const QueryNode *benchmarkQuery() const { return &Q[0]; }

  /// Counts matching records by interpreting the query per record.
  int countStaticO0(const QueryNode *Q) const;
  int countStaticO2(const QueryNode *Q) const;

  /// Compiles the query into `int match(const Record *)` and returns it;
  /// scanning then runs native code per record.
  core::CompiledFn specialize(const QueryNode *Q,
                              const core::CompileOptions &Opts) const;

  /// The server path: memoized instantiation. Re-specializing the same
  /// query (same shape, fields, and comparison values) returns the cached
  /// matcher instead of recompiling.
  cache::FnHandle specializeCached(
      const QueryNode *Q, cache::CompileService &Service,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Fingerprints \p Q without compiling: the same key specializeCached()
  /// derives internally. A caller that keeps this alongside its query plan
  /// can serve repeats via CompileService::lookup() — no spec rebuild, no
  /// fingerprint walk — and fall back to specializeCached() on a miss.
  cache::SpecKey
  cacheKey(const QueryNode *Q,
           const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// The tiered path: answers at VCODE compile latency, recompiles with
  /// ICODE in the background once the matcher turns hot, and swaps the
  /// returned dispatch slot in place. \p Q must stay alive until the slot
  /// is promoted (the background compile re-lowers it). Call as
  /// `TF->call<int(const Record *)>(&R)` or batch via `TF->handle()`.
  tier::TieredFnHandle specializeTiered(
      const QueryNode *Q, cache::CompileService &Service,
      tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Scans the database with a compiled matcher.
  int countCompiled(int (*Match)(const Record *)) const;

  /// Interprets \p Q against one record (optimized build) — reference for
  /// per-record agreement checks.
  static int matchStatic(const QueryNode *Q, const Record *R);

  const std::vector<Record> &records() const { return Db; }

private:
  std::vector<Record> Db;
  QueryNode Q[9];
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_QUERY_H
