//===- apps/Power.h - Partial evaluation of exponentiation -----*- C++ -*-===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `pow` benchmark (§6.2, "Dynamic partial evaluation"):
/// specializing x^n for a fixed exponent "reduces the exponentiation
/// algorithm to a minimum number of multiplication and squaring
/// operations". The benchmark instantiates x^13; the static version runs a
/// general integer power loop.
///
//===----------------------------------------------------------------------===//

#ifndef TICKC_APPS_POWER_H
#define TICKC_APPS_POWER_H

#include "cache/CompileService.h"
#include "core/Compile.h"

namespace tcc {
namespace apps {

class PowerApp {
public:
  explicit PowerApp(unsigned Exponent = 13) : Exponent(Exponent) {}

  int powStaticO0(int X) const;
  int powStaticO2(int X) const;

  /// Instantiates `int pow(int x)` as a straight-line square-and-multiply
  /// chain composed at specification time.
  core::CompiledFn specialize(const core::CompileOptions &Opts) const;

  /// Memoized instantiation: one compile per (exponent, options) identity.
  cache::FnHandle specializeCached(
      cache::CompileService &Service,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Fingerprints this exponent's spec without compiling — pair with
  /// CompileService::lookup() for repeat instantiations (see
  /// QueryApp::cacheKey for the pattern).
  cache::SpecKey
  cacheKey(const core::CompileOptions &Opts = core::CompileOptions()) const;

  /// Tiered instantiation: VCODE now, background ICODE promotion once hot.
  /// Call as `TF->call<int(int)>(X)`.
  tier::TieredFnHandle specializeTiered(
      cache::CompileService &Service, tier::TierManager *Manager = nullptr,
      const core::CompileOptions &Opts = core::CompileOptions()) const;

  unsigned exponent() const { return Exponent; }

private:
  unsigned Exponent;
};

} // namespace apps
} // namespace tcc

#endif // TICKC_APPS_POWER_H
