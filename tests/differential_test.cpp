//===- tests/differential_test.cpp - Cross-backend differential fuzzing ---===//
//
// Generates random structured programs (locals, arithmetic, nested ifs and
// bounded loops) and checks that every configuration of the system — the
// tier-0 spec-tree interpreter, VCODE, PCODE (copy-and-patch), ICODE with
// linear scan, ICODE with graph coloring, and both spill heuristics —
// computes exactly the same result as a host-side reference interpreter.
// This is the strongest whole-pipeline invariant we have: any divergence in
// the interpreter's evaluator, the encoder, stencil patching, register
// allocators, spill paths, strength reduction, or the CGF walk shows up as
// a value mismatch. PCODE is additionally held to byte identity against
// VCODE on every random program.
//
//===----------------------------------------------------------------------===//

#include "cache/CompileService.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "core/SpecInterp.h"
#include "tier/Tier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;

namespace {

/// A tiny program generator that builds the same computation twice: once
/// as a cspec tree and once as a host-side closure ("the reference").
class ProgramGen {
public:
  ProgramGen(Context &C, std::mt19937 &Rng) : C(C), Rng(Rng) {
    // Two int parameters plus a handful of int locals.
    Params[0] = C.paramInt(0);
    Params[1] = C.paramInt(1);
    for (int I = 0; I < 4; ++I)
      Locals.push_back(C.localInt());
    Ref.assign(Locals.size(), 0);
  }

  /// Builds a random statement sequence; returns the specification and
  /// keeps a parallel reference evaluator.
  Stmt build(unsigned Depth) {
    std::vector<Stmt> Body;
    // Dynamic locals start with garbage (as in C); zero them so the
    // generated program matches the reference's zeroed state.
    for (VSpec L : Locals)
      Body.push_back(C.assign(L, C.intConst(0)));
    unsigned N = 2 + Rng() % 4;
    for (unsigned I = 0; I < N; ++I)
      Body.push_back(genStmt(Depth));
    return C.block(Body);
  }

  /// Runs the reference on concrete arguments; call after build().
  long long runReference(int A0, int A1) {
    Args[0] = A0;
    Args[1] = A1;
    Ref.assign(Locals.size(), 0);
    for (auto &Step : Trace)
      Step();
    long long Acc = 0;
    for (std::size_t I = 0; I < Ref.size(); ++I)
      Acc = wrap(Acc * 31 + Ref[I]);
    return Acc;
  }

  /// Final checksum expression matching runReference's accumulation.
  Expr checksum() {
    Expr Acc = C.intConst(0);
    for (VSpec L : Locals)
      Acc = Acc * C.intConst(31) + Expr(L);
    return Acc;
  }

private:
  static long long wrap(long long V) {
    return static_cast<long long>(static_cast<std::int32_t>(V));
  }

  /// A random int expression over params/locals/constants, with a
  /// host-side evaluator captured into EvalFns.
  struct GenExpr {
    Expr E;
    std::function<long long()> Eval;
  };

  GenExpr genExpr(unsigned Depth) {
    unsigned Sel = Rng() % (Depth == 0 ? 3 : 5);
    switch (Sel) {
    case 0: {
      int V = static_cast<int>(Rng() % 200) - 100;
      return {C.intConst(V), [V] { return static_cast<long long>(V); }};
    }
    case 1: {
      std::size_t P = Rng() % 2;
      return {Expr(Params[P]), [this, P] {
                return static_cast<long long>(Args[P]);
              }};
    }
    case 2: {
      std::size_t L = Rng() % Locals.size();
      return {Expr(Locals[L]), [this, L] {
                return static_cast<long long>(Ref[L]);
              }};
    }
    default: {
      GenExpr A = genExpr(Depth - 1);
      GenExpr B = genExpr(Depth - 1);
      switch (Rng() % 4) {
      case 0:
        return {A.E + B.E,
                [A, B] { return wrap(A.Eval() + B.Eval()); }};
      case 1:
        return {A.E - B.E,
                [A, B] { return wrap(A.Eval() - B.Eval()); }};
      case 2:
        return {A.E * B.E, [A, B] {
                  return wrap(static_cast<long long>(A.Eval()) * B.Eval());
                }};
      default:
        return {A.E ^ B.E,
                [A, B] { return wrap(A.Eval() ^ B.Eval()); }};
      }
    }
    }
  }

  Stmt genStmt(unsigned Depth) {
    unsigned Sel = Rng() % (Depth == 0 ? 1 : 3);
    if (Sel == 0) {
      // local = expr
      std::size_t L = Rng() % Locals.size();
      GenExpr E = genExpr(2);
      Trace.push_back([this, L, E] {
        Ref[L] = static_cast<std::int32_t>(E.Eval());
      });
      return C.assign(Locals[L], E.E);
    }
    if (Sel == 1) {
      // if (a < b) S1 else S2 — the reference replays the same comparison.
      GenExpr A = genExpr(1), B = genExpr(1);
      // Mark a branch point: children record into branch-local traces.
      auto ThenStart = beginBranch();
      Stmt S1 = genStmt(Depth - 1);
      auto ThenTrace = endBranch(ThenStart);
      auto ElseStart = beginBranch();
      Stmt S2 = genStmt(Depth - 1);
      auto ElseTrace = endBranch(ElseStart);
      Trace.push_back([this, A, B, ThenTrace, ElseTrace] {
        const auto &Steps = A.Eval() < B.Eval() ? ThenTrace : ElseTrace;
        for (const auto &Step : Steps)
          Step();
      });
      return C.ifStmt(A.E < B.E, S1, S2);
    }
    // Bounded counting loop over a fresh iteration count (0..7) with a
    // body that mutates locals; induction variable is a dedicated local.
    std::size_t L = Rng() % Locals.size();
    GenExpr Delta = genExpr(1);
    int Count = static_cast<int>(Rng() % 8);
    VSpec I = C.localInt();
    Stmt Body = C.assign(Locals[L], Expr(Locals[L]) + Delta.E);
    Trace.push_back([this, L, Delta, Count] {
      for (int K = 0; K < Count; ++K)
        Ref[L] = static_cast<std::int32_t>(wrap(Ref[L] + Delta.Eval()));
    });
    return C.forStmt(I, C.intConst(0), vcode::CmpKind::LtS,
                     C.intConst(Count), C.intConst(1), Body);
  }

  // Branch-local trace capture: statements generated between begin/end are
  // moved into a sub-trace replayed conditionally.
  std::size_t beginBranch() { return Trace.size(); }
  std::vector<std::function<void()>> endBranch(std::size_t Start) {
    std::vector<std::function<void()>> Sub(Trace.begin() + Start,
                                           Trace.end());
    Trace.resize(Start);
    return Sub;
  }

  Context &C;
  std::mt19937 &Rng;
  VSpec Params[2];
  std::vector<VSpec> Locals;

public:
  std::vector<std::int32_t> Ref;
  int Args[2] = {0, 0};
  std::vector<std::function<void()>> Trace;
};

TEST(Differential, AllConfigurationsAgree) {
  std::mt19937 Rng(20260707);
  const std::pair<int, int> Inputs[] = {
      {0, 0}, {1, -1}, {17, 5}, {-100, 99}, {12345, -777}};
  for (int Trial = 0; Trial < 60; ++Trial) {
    Context C;
    ProgramGen Gen(C, Rng);
    Stmt Body = Gen.build(3);
    Stmt Fn = C.block({Body, C.ret(Gen.checksum())});

    struct Config {
      const char *Name;
      BackendKind Backend;
      icode::RegAllocKind Alloc;
      icode::SpillHeuristic Spill;
    };
    const Config Configs[] = {
        {"vcode", BackendKind::VCode, icode::RegAllocKind::LinearScan,
         icode::SpillHeuristic::LongestInterval},
        {"pcode", BackendKind::PCode, icode::RegAllocKind::LinearScan,
         icode::SpillHeuristic::LongestInterval},
        {"icode-ls", BackendKind::ICode, icode::RegAllocKind::LinearScan,
         icode::SpillHeuristic::LongestInterval},
        {"icode-ls-weighted", BackendKind::ICode,
         icode::RegAllocKind::LinearScan, icode::SpillHeuristic::LowestWeight},
        {"icode-gc", BackendKind::ICode, icode::RegAllocKind::GraphColor,
         icode::SpillHeuristic::LongestInterval},
    };
    std::vector<CompiledFn> Fns;
    for (const Config &Cfg : Configs) {
      CompileOptions O;
      O.Backend = Cfg.Backend;
      O.RegAlloc = Cfg.Alloc;
      O.Spill = Cfg.Spill;
      CompiledFn F = compileFn(C, Fn, EvalType::Int, O);
      auto *P = F.as<int(int, int)>();
      for (auto [A0, A1] : Inputs) {
        long long Want = Gen.runReference(A0, A1);
        EXPECT_EQ(P(A0, A1), static_cast<int>(Want))
            << "trial " << Trial << " config " << Cfg.Name << " args ("
            << A0 << ", " << A1 << ")";
      }
      Fns.push_back(std::move(F));
    }
    // PCODE (Configs[1]) instantiates by stencil copy + patch but must
    // produce the exact bytes VCODE (Configs[0]) encodes.
    const CompiledFn &FV = Fns[0], &FP = Fns[1];
    ASSERT_EQ(FV.stats().CodeBytes, FP.stats().CodeBytes) << "trial " << Trial;
    EXPECT_EQ(std::memcmp(FV.entry(), FP.entry(), FV.stats().CodeBytes), 0)
        << "trial " << Trial;

    // Tier 0: the interpreter executes the same tree the backends compile
    // and must agree exactly with all of them.
    ASSERT_TRUE(specInterpretable(C, Fn, EvalType::Int)) << "trial " << Trial;
    SpecInterp Interp(C, Fn, EvalType::Int);
    for (auto [A0, A1] : Inputs) {
      long long Want = Gen.runReference(A0, A1);
      std::int64_t IA[2] = {A0, A1};
      InterpResult R = Interp.run(IA, 2, nullptr, 0);
      EXPECT_EQ(static_cast<int>(R.I), static_cast<int>(Want))
          << "trial " << Trial << " config interp args (" << A0 << ", " << A1
          << ")";
    }
  }
}

// The tiered configuration: the same random programs dispatched through a
// TieredFn slot with a promotion mid-stream. With tier 0 on (the default)
// the slot is born interpreted, so the stream crosses TWO swaps: the
// interpreter answers until the background baseline compile lands — PCODE
// unless TICKC_BACKEND overrides it — and the baseline answers until the
// ICODE promotion lands. The reference must agree on every tier and across
// both swaps — any divergence between the tiers of one spec, or any
// tearing during a swap, shows up as a value mismatch.
TEST(Differential, TieredPromotionAgreesMidStream) {
  std::mt19937 Rng(20260806);
  const std::pair<int, int> Inputs[] = {
      {0, 0}, {1, -1}, {17, 5}, {-100, 99}, {12345, -777}};

  // Service outlives the manager, which outlives every slot handle.
  cache::CompileService Service;
  tier::TierConfig TC;
  TC.Workers = 2;
  TC.PromoteThreshold = 4; // Promote a few calls into each trial's stream.
  tier::TierManager TM(TC);

  for (int Trial = 0; Trial < 25; ++Trial) {
    // Snapshot the generator state: the promotion worker replays the exact
    // same program into a fresh Context from this copy.
    const std::mt19937 RngAtTrial = Rng;
    Context C;
    ProgramGen Gen(C, Rng);
    Stmt Body = Gen.build(3);
    Stmt Fn = C.block({Body, C.ret(Gen.checksum())});
    (void)Body;
    (void)Fn; // Reference only; the slot rebuilds from the snapshot.

    tier::TieredFnHandle TF = Service.getOrCompileTiered(
        [RngAtTrial](Context &C2) {
          std::mt19937 R = RngAtTrial;
          ProgramGen G(C2, R);
          Stmt B = G.build(3);
          return C2.block({B, C2.ret(G.checksum())});
        },
        EvalType::Int, CompileOptions(), &TM);
    ASSERT_TRUE(TF);

    // Baseline tier, then keep calling across the threshold and the swap.
    for (unsigned Round = 0; Round < 6; ++Round) {
      for (auto [A0, A1] : Inputs) {
        long long Want = Gen.runReference(A0, A1);
        EXPECT_EQ((TF->call<int(int, int)>(A0, A1)), static_cast<int>(Want))
            << "trial " << Trial << " round " << Round << " args (" << A0
            << ", " << A1 << ")";
      }
    }
    // Land the promotion inside the trial, then re-verify on the ICODE
    // tier explicitly.
    ASSERT_TRUE(TF->waitPromoted()) << "trial " << Trial;
    for (auto [A0, A1] : Inputs) {
      long long Want = Gen.runReference(A0, A1);
      EXPECT_EQ((TF->call<int(int, int)>(A0, A1)), static_cast<int>(Want))
          << "trial " << Trial << " post-promotion args (" << A0 << ", "
          << A1 << ")";
    }
  }
}

// Tier 0 under load: many threads hammer a freshly created slot from its
// interpreted birth through the baseline swap and the ICODE promotion,
// while the answers are checked on every call. Run under TSan in CI — the
// interpreted-entry swap (Entry null -> baseline) is the newest race
// surface in the dispatch path.
TEST(Differential, TieredInterpretedPromotionUnderLoad) {
  std::mt19937 Rng(20260807);
  const std::pair<int, int> Inputs[] = {
      {0, 0}, {1, -1}, {17, 5}, {-100, 99}, {12345, -777}};

  cache::CompileService Service;
  tier::TierConfig TC;
  TC.Workers = 2;
  TC.PromoteThreshold = 64;
  tier::TierManager TM(TC);

  for (int Trial = 0; Trial < 6; ++Trial) {
    const std::mt19937 RngAtTrial = Rng;
    Context C;
    ProgramGen Gen(C, Rng);
    Stmt Body = Gen.build(3);
    Stmt Fn = C.block({Body, C.ret(Gen.checksum())});
    (void)Body;
    (void)Fn; // Reference only; the slot rebuilds from the snapshot.

    // Precompute the expected values: runReference mutates shared state,
    // so it cannot be called from the racing threads.
    int Want[std::size(Inputs)];
    for (std::size_t I = 0; I < std::size(Inputs); ++I)
      Want[I] = static_cast<int>(
          Gen.runReference(Inputs[I].first, Inputs[I].second));

    tier::TieredFnHandle TF = Service.getOrCompileTiered(
        [RngAtTrial](Context &C2) {
          std::mt19937 R = RngAtTrial;
          ProgramGen G(C2, R);
          Stmt B = G.build(3);
          return C2.block({B, C2.ret(G.checksum())});
        },
        EvalType::Int, CompileOptions(), &TM);
    ASSERT_TRUE(TF);

    constexpr unsigned NumThreads = 8;
    std::atomic<unsigned> Failures{0};
    std::atomic<bool> Stop{false};
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T) {
      Threads.emplace_back([&] {
        for (unsigned Sweep = 0; Sweep < 300 && !Stop.load(); ++Sweep)
          for (std::size_t I = 0; I < std::size(Inputs); ++I)
            if (TF->call<int(int, int)>(Inputs[I].first, Inputs[I].second) !=
                Want[I])
              Failures.fetch_add(1, std::memory_order_relaxed);
      });
    }
    bool Promoted = TF->waitPromoted();
    Stop.store(true);
    for (std::thread &T : Threads)
      T.join();
    EXPECT_TRUE(Promoted) << "trial " << Trial;
    EXPECT_EQ(Failures.load(), 0u) << "trial " << Trial;
    // Both swaps landed; the slot ends on the optimized tier and the
    // answers never wavered along the way.
    for (std::size_t I = 0; I < std::size(Inputs); ++I)
      EXPECT_EQ(
          (TF->call<int(int, int)>(Inputs[I].first, Inputs[I].second)),
          Want[I])
          << "trial " << Trial << " post-promotion input " << I;
  }
}

} // namespace
