//===- tests/core_test.cpp - `C core semantics tests ----------------------===//
//
// Exercises the specification/instantiation pipeline on both back ends,
// including the examples from the paper itself: composition (`4+5`), the
// `$x` binding-time demonstration (§3), and dot-product unrolling (§4.4).
//
//===----------------------------------------------------------------------===//

#include "core/Compile.h"
#include "core/Context.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>

using namespace tcc;
using namespace tcc::core;

namespace {

class CoreBothBackends : public ::testing::TestWithParam<BackendKind> {
protected:
  CompileOptions opts() const {
    CompileOptions O;
    O.Backend = GetParam();
    return O;
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, CoreBothBackends,
                         ::testing::Values(BackendKind::VCode,
                                           BackendKind::ICode),
                         [](const auto &Info) {
                           return Info.param == BackendKind::VCode ? "VCode"
                                                                   : "ICode";
                         });

// --- Paper examples -----------------------------------------------------------

TEST_P(CoreBothBackends, ComposeFourPlusFive) {
  // int cspec c1 = `4, c2 = `5; int cspec c = `(c1 + c2);
  Context C;
  Expr C1 = C.intConst(4);
  Expr C2 = C.intConst(5);
  Expr Sum = C1 + C2;
  CompiledFn F = compileFn(C, C.ret(Sum), EvalType::Int, opts());
  EXPECT_EQ(F.as<int()>()(), 9);
}

static std::string HelloOut;
static void recordString(const char *S) { HelloOut += S; }

TEST_P(CoreBothBackends, HelloWorld) {
  // void cspec hello = `{ printf("hello world"); };
  Context C;
  static const char Msg[] = "hello world";
  Stmt Hello = C.exprStmt(
      C.callC(reinterpret_cast<const void *>(&recordString), EvalType::Void,
              {C.rcPtr(Msg)}));
  CompiledFn F = compileFn(C, Hello, EvalType::Void, opts());
  HelloOut.clear();
  F.as<void()>()();
  EXPECT_EQ(HelloOut, "hello world");
}

TEST_P(CoreBothBackends, DollarBindingTime) {
  // int x = 1; fp = compile(`{ out($x, x); }, void); x = 14; (*fp)();
  // must report $x = 1 and x = 14.
  static int X;
  X = 1;
  Context C;
  static int SeenRc, SeenFv;
  auto Out = +[](int Rc, int Fv) {
    SeenRc = Rc;
    SeenFv = Fv;
  };
  Stmt Body = C.exprStmt(C.callC(reinterpret_cast<const void *>(Out),
                                 EvalType::Void,
                                 {C.rcInt(X), C.fvInt(&X)}));
  CompiledFn F = compileFn(C, Body, EvalType::Void, opts());
  X = 14;
  F.as<void()>()();
  EXPECT_EQ(SeenRc, 1) << "$x captured at specification time";
  EXPECT_EQ(SeenFv, 14) << "free variable read at run time";
}

TEST_P(CoreBothBackends, DotProductSpecTimeComposition) {
  // The paper's first dot-product variant: spec-time loop composing
  //   sum = `(sum + col[$k] * $row[k])  for nonzero row[k].
  int Row[8] = {2, 0, 3, 0, 0, 1, 0, 5};
  Context C;
  VSpec Col = C.paramPtr(0);
  Expr Sum = C.intConst(0);
  for (int K = 0; K < 8; ++K) {
    if (!Row[K])
      continue; // Dead code never even specified.
    Expr Elem = C.index(Col, C.rcInt(K), MemType::I32);
    Sum = Sum + Elem * C.rcInt(Row[K]);
  }
  CompiledFn F = compileFn(C, C.ret(Sum), EvalType::Int, opts());
  int ColV[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  int Want = 0;
  for (int K = 0; K < 8; ++K)
    Want += ColV[K] * Row[K];
  EXPECT_EQ(F.as<int(const int *)>()(ColV), Want);
}

TEST_P(CoreBothBackends, DotProductDynamicUnrolling) {
  // The paper's second variant: `{ for (k = 0; k < $n; k++)
  //     if ($row[k]) sum += col[k] * $row[k]; return sum; }
  // k becomes a derived run-time constant; the loop unrolls; zero entries
  // vanish via dead-branch elimination.
  static int Row[8] = {2, 0, 3, 0, 0, 1, 0, 5};
  int N = 8;
  Context C;
  VSpec Col = C.paramPtr(0);
  VSpec K = C.localInt();
  VSpec Sum = C.localInt();
  Expr RowK = C.rtEval(C.index(C.rcPtr(Row), K, MemType::I32)); // $row[k]
  Stmt Body = C.ifStmt(
      RowK != C.intConst(0),
      C.assign(Sum, Expr(Sum) + C.index(Col, K, MemType::I32) * RowK));
  Stmt Fn = C.block({
      C.assign(Sum, C.intConst(0)),
      C.forStmt(K, C.intConst(0), CmpKind::LtS, C.rcInt(N), C.intConst(1),
                Body),
      C.ret(Sum),
  });
  CompiledFn F = compileFn(C, Fn, EvalType::Int, opts());
  int ColV[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  int Want = 0;
  for (int I = 0; I < 8; ++I)
    Want += ColV[I] * Row[I];
  EXPECT_EQ(F.as<int(const int *)>()(ColV), Want);
  // Unrolled + strength-reduced code has no loop: must be much smaller than
  // 8 iterations' worth of general code, and contain no backward branches.
  // Cheap proxy: fewer machine instructions than a conservative bound.
  EXPECT_LT(F.stats().MachineInstrs, 80u);
}

// --- Language building blocks ---------------------------------------------------

TEST_P(CoreBothBackends, ParamsAndArith) {
  Context C;
  VSpec A = C.paramInt(0), B = C.paramInt(1);
  CompiledFn F = compileFn(
      C, C.ret((Expr(A) + Expr(B)) * (Expr(A) - Expr(B))), EvalType::Int,
      opts());
  auto *Fn = F.as<int(int, int)>();
  for (int X : {0, 3, -5, 1000})
    for (int Y : {1, -2, 77})
      EXPECT_EQ(Fn(X, Y), (X + Y) * (X - Y));
}

TEST_P(CoreBothBackends, AllIntOperators) {
  Context C;
  VSpec A = C.paramInt(0), B = C.paramInt(1);
  Expr EA = A, EB = B;
  // ((a+b)*3 - a/b + a%b) ^ (a&b) | (a<<2) ... exercise every operator once.
  Expr E = (EA + EB) * C.intConst(3) - EA / EB + EA % EB;
  E = E ^ (EA & EB);
  E = E | (EA << C.intConst(2));
  E = E + (EB >> C.intConst(1));
  CompiledFn F = compileFn(C, C.ret(E), EvalType::Int, opts());
  auto *Fn = F.as<int(int, int)>();
  auto Ref = [](int A, int B) {
    int E = (A + B) * 3 - A / B + A % B;
    E = E ^ (A & B);
    E = E | (A << 2);
    E = E + (B >> 1);
    return E;
  };
  for (int X : {7, -13, 1024, 99999})
    for (int Y : {2, -3, 17})
      EXPECT_EQ(Fn(X, Y), Ref(X, Y)) << X << "," << Y;
}

TEST_P(CoreBothBackends, WhileLoopAndComparisons) {
  // Collatz step count (bounded).
  Context C;
  VSpec N = C.paramInt(0);
  VSpec Steps = C.localInt();
  Stmt Body = C.ifStmt(
      (Expr(N) % C.intConst(2)) == C.intConst(0),
      C.assign(N, Expr(N) / C.intConst(2)),
      C.assign(N, Expr(N) * C.intConst(3) + C.intConst(1)));
  CompiledFn F = compileFn(
      C,
      C.block({
          C.assign(Steps, C.intConst(0)),
          C.whileStmt(Expr(N) != C.intConst(1),
                      C.block({Body, C.assign(Steps, Expr(Steps) +
                                                         C.intConst(1))})),
          C.ret(Steps),
      }),
      EvalType::Int, opts());
  auto *Fn = F.as<int(int)>();
  auto Ref = [](int N) {
    int S = 0;
    while (N != 1) {
      N = N % 2 == 0 ? N / 2 : 3 * N + 1;
      ++S;
    }
    return S;
  };
  for (int X : {1, 2, 7, 27, 97})
    EXPECT_EQ(Fn(X), Ref(X)) << X;
}

TEST_P(CoreBothBackends, RuntimeForLoop) {
  // Bound is a parameter -> cannot unroll; must run as a real loop.
  Context C;
  VSpec N = C.paramInt(0);
  VSpec I = C.localInt(), Acc = C.localInt();
  CompiledFn F = compileFn(
      C,
      C.block({
          C.assign(Acc, C.intConst(0)),
          C.forStmt(I, C.intConst(0), CmpKind::LtS, Expr(N), C.intConst(1),
                    C.assign(Acc, Expr(Acc) + Expr(I) * Expr(I))),
          C.ret(Acc),
      }),
      EvalType::Int, opts());
  auto *Fn = F.as<int(int)>();
  int Want = 0;
  for (int K = 0; K < 50; ++K)
    Want += K * K;
  EXPECT_EQ(Fn(50), Want);
  EXPECT_EQ(Fn(0), 0);
}

TEST_P(CoreBothBackends, BreakAndContinue) {
  // sum of odd i < n, stopping at i == 100.
  Context C;
  VSpec N = C.paramInt(0);
  VSpec I = C.localInt(), Acc = C.localInt();
  Stmt Body = C.block({
      C.ifStmt(Expr(I) == C.intConst(100), C.breakStmt()),
      C.ifStmt((Expr(I) % C.intConst(2)) == C.intConst(0), C.continueStmt()),
      C.assign(Acc, Expr(Acc) + Expr(I)),
  });
  CompiledFn F = compileFn(
      C,
      C.block({
          C.assign(Acc, C.intConst(0)),
          C.forStmt(I, C.intConst(0), CmpKind::LtS, Expr(N), C.intConst(1),
                    Body),
          C.ret(Acc),
      }),
      EvalType::Int, opts());
  auto Ref = [](int N) {
    int Acc = 0;
    for (int I = 0; I < N; ++I) {
      if (I == 100)
        break;
      if (I % 2 == 0)
        continue;
      Acc += I;
    }
    return Acc;
  };
  auto *Fn = F.as<int(int)>();
  EXPECT_EQ(Fn(50), Ref(50));
  EXPECT_EQ(Fn(500), Ref(500));
}

TEST_P(CoreBothBackends, DynamicLabelsAndGoto) {
  // Paper §3: `C can create labels and jumps dynamically.
  Context C;
  VSpec A = C.paramInt(0);
  DynLabel Skip = C.newLabel();
  VSpec R = C.localInt();
  CompiledFn F = compileFn(
      C,
      C.block({
          C.assign(R, C.intConst(1)),
          C.ifStmt(Expr(A) > C.intConst(0), C.gotoLabel(Skip)),
          C.assign(R, C.intConst(2)),
          C.labelHere(Skip),
          C.ret(R),
      }),
      EvalType::Int, opts());
  auto *Fn = F.as<int(int)>();
  EXPECT_EQ(Fn(5), 1);
  EXPECT_EQ(Fn(-5), 2);
}

TEST_P(CoreBothBackends, DoubleArithmeticAndConversion) {
  Context C;
  VSpec X = C.paramDouble(0);
  VSpec N = C.paramInt(0); // int args numbered separately from fp args
  Expr E = (Expr(X) * Expr(X) + C.toDouble(Expr(N))) / C.doubleConst(2.0);
  CompiledFn F = compileFn(C, C.ret(E), EvalType::Double, opts());
  auto *Fn = F.as<double(int, double)>(); // SysV: int in rdi, double in xmm0
  EXPECT_DOUBLE_EQ(Fn(4, 3.0), (3.0 * 3.0 + 4.0) / 2.0);
}

TEST_P(CoreBothBackends, TernaryAndLogical) {
  Context C;
  VSpec A = C.paramInt(0), B = C.paramInt(1);
  // max3-ish with logical ops: (a>0 && b>0) ? a+b : (a>0 || b>0 ? 1 : -1)
  Expr Cond1 = (Expr(A) > C.intConst(0)) && (Expr(B) > C.intConst(0));
  Expr Cond2 = (Expr(A) > C.intConst(0)) || (Expr(B) > C.intConst(0));
  // Build ?: via if/else into a local (also test logNot).
  VSpec R = C.localInt();
  CompiledFn F = compileFn(
      C,
      C.block({
          C.ifStmt(Cond1, C.assign(R, Expr(A) + Expr(B)),
                   C.ifStmt(Cond2, C.assign(R, C.intConst(1)),
                            C.assign(R, C.intConst(-1)))),
          C.ret(R),
      }),
      EvalType::Int, opts());
  auto *Fn = F.as<int(int, int)>();
  EXPECT_EQ(Fn(2, 3), 5);
  EXPECT_EQ(Fn(2, -3), 1);
  EXPECT_EQ(Fn(-2, 3), 1);
  EXPECT_EQ(Fn(-2, -3), -1);
}

TEST_P(CoreBothBackends, MemoryStoreAndWidths) {
  // Write a mixed struct through dynamic code.
  struct Out {
    std::int8_t B;
    std::int16_t H;
    std::int32_t W;
    std::int64_t L;
    double D;
  };
  Context C;
  VSpec P = C.paramPtr(0);
  VSpec V = C.paramInt(1);
  auto At = [&](unsigned Off) {
    return C.binary(BinOp::Add, Expr(P), C.longConst(Off));
  };
  CompiledFn F = compileFn(
      C,
      C.block({
          C.storeMem(MemType::I8, At(offsetof(Out, B)), Expr(V)),
          C.storeMem(MemType::I16, At(offsetof(Out, H)), Expr(V)),
          C.storeMem(MemType::I32, At(offsetof(Out, W)), Expr(V)),
          C.storeMem(MemType::I64, At(offsetof(Out, L)), C.toLong(Expr(V))),
          C.storeMem(MemType::F64, At(offsetof(Out, D)),
                     C.toDouble(Expr(V))),
          C.retVoid(),
      }),
      EvalType::Void, opts());
  Out O{};
  F.as<void(Out *, int)>()(&O, -2);
  EXPECT_EQ(O.B, -2);
  EXPECT_EQ(O.H, -2);
  EXPECT_EQ(O.W, -2);
  EXPECT_EQ(O.L, -2);
  EXPECT_DOUBLE_EQ(O.D, -2.0);
}

TEST_P(CoreBothBackends, StrengthReductionCorrectness) {
  // x * $c and x / $c for many run-time constants: must match C semantics
  // through all the shift/add/bias fast paths.
  std::mt19937 Rng(7);
  for (int M : {2, 3, 4, 5, 7, 8, 12, 16, 100, -4, -6, 1 << 20}) {
    Context C;
    VSpec X = C.paramInt(0);
    Expr E = Expr(X) * C.rcInt(M) + Expr(X) / C.rcInt(M);
    CompiledFn F = compileFn(C, C.ret(E), EvalType::Int, opts());
    auto *Fn = F.as<int(int)>();
    for (int T = 0; T < 40; ++T) {
      int V = static_cast<int>(Rng()) % 100000;
      EXPECT_EQ(Fn(V), V * M + V / M) << V << " with const " << M;
    }
  }
}

TEST_P(CoreBothBackends, NestedLoopDerivedRuntimeConstants) {
  // Paper §4.4: "run-time constant information propagates down loop
  // nesting levels". Outer and inner both unroll; the inner bound depends
  // on the outer induction variable.
  Context C;
  VSpec I = C.localInt(), J = C.localInt(), Acc = C.localInt();
  Stmt Inner = C.forStmt(J, C.intConst(0), CmpKind::LeS, Expr(I),
                         C.intConst(1),
                         C.assign(Acc, Expr(Acc) + Expr(J)));
  CompiledFn F = compileFn(
      C,
      C.block({
          C.assign(Acc, C.intConst(0)),
          C.forStmt(I, C.intConst(0), CmpKind::LtS, C.rcInt(6), C.intConst(1),
                    Inner),
          C.ret(Acc),
      }),
      EvalType::Int, opts());
  int Want = 0;
  for (int I2 = 0; I2 < 6; ++I2)
    for (int J2 = 0; J2 <= I2; ++J2)
      Want += J2;
  EXPECT_EQ(F.as<int()>()(), Want);
}

TEST_P(CoreBothBackends, CallsWithManyArgsAndDoubles) {
  static double Got;
  auto Sink = +[](int A, int B, int C_, double X, double Y) {
    Got = A * 100 + B * 10 + C_ + X * Y;
    return A + B + C_;
  };
  Context C;
  VSpec P = C.paramInt(0);
  Expr CallE =
      C.callC(reinterpret_cast<const void *>(Sink), EvalType::Int,
              {Expr(P), C.intConst(2), C.intConst(3), C.doubleConst(1.5),
               C.doubleConst(4.0)});
  CompiledFn F = compileFn(C, C.ret(CallE), EvalType::Int, opts());
  EXPECT_EQ(F.as<int(int)>()(1), 6);
  EXPECT_DOUBLE_EQ(Got, 123 + 6.0);
}

TEST_P(CoreBothBackends, FpValueLiveAcrossCall) {
  // A double computed before a call and used after it must survive the
  // call (XMM registers are caller-saved — the back ends must protect it).
  auto Bump = +[](int X) { return X + 1; };
  Context C;
  VSpec X = C.paramDouble(0);
  VSpec D = C.localDouble();
  VSpec N = C.localInt();
  CompiledFn F = compileFn(
      C,
      C.block({
          C.assign(D, Expr(X) * C.doubleConst(3.0)),
          C.assign(N, C.callC(reinterpret_cast<const void *>(Bump),
                              EvalType::Int, {C.intConst(41)})),
          C.ret(Expr(D) + C.toDouble(Expr(N))),
      }),
      EvalType::Double, opts());
  EXPECT_DOUBLE_EQ(F.as<double(double)>()(2.0), 6.0 + 42.0);
}

TEST_P(CoreBothBackends, IndirectCall) {
  Context C;
  VSpec Fn = C.paramPtr(0);
  VSpec X = C.paramInt(1);
  Expr R = C.callIndirect(Expr(Fn), EvalType::Int, {Expr(X), C.intConst(10)});
  CompiledFn F = compileFn(C, C.ret(R), EvalType::Int, opts());
  auto Mul = +[](int A, int B) { return A * B; };
  auto Add = +[](int A, int B) { return A + B; };
  auto *G = F.as<int(int (*)(int, int), int)>();
  EXPECT_EQ(G(Mul, 6), 60);
  EXPECT_EQ(G(Add, 6), 16);
}

TEST_P(CoreBothBackends, DeadBranchElimination) {
  // if ($flag) A else B — only one branch's code is generated.
  // Baseline with a genuinely dynamic condition for size comparison.
  unsigned DynamicSize;
  {
    Context C;
    VSpec P = C.paramInt(0);
    CompiledFn F = compileFn(
        C,
        C.block({C.ifStmt(Expr(P), C.ret(C.intConst(111)),
                          C.ret(C.intConst(222)))}),
        EvalType::Int, opts());
    DynamicSize = F.stats().MachineInstrs;
  }
  for (int Flag : {0, 1}) {
    Context C;
    CompiledFn F = compileFn(
        C,
        C.block({C.ifStmt(C.rcInt(Flag), C.ret(C.intConst(111)),
                          C.ret(C.intConst(222)))}),
        EvalType::Int, opts());
    EXPECT_EQ(F.as<int()>()(), Flag ? 111 : 222);
    EXPECT_LT(F.stats().MachineInstrs, DynamicSize)
        << "dead branch should not be generated";
  }
}

TEST_P(CoreBothBackends, LongArithmetic) {
  Context C;
  VSpec A = C.paramLong(0), B = C.paramLong(1);
  Expr E = (Expr(A) + Expr(B)) * C.longConst(1007);
  CompiledFn F = compileFn(C, C.ret(E), EvalType::Long, opts());
  auto *Fn = F.as<long long(long long, long long)>();
  EXPECT_EQ(Fn(1ll << 40, 5), ((1ll << 40) + 5) * 1007);
}

TEST_P(CoreBothBackends, RandomPrograms) {
  // Property sweep: random arithmetic over two params + locals compiled on
  // both back ends equals the interpreted reference.
  std::mt19937 Rng(2024);
  for (int Trial = 0; Trial < 25; ++Trial) {
    Context C;
    VSpec P0 = C.paramInt(0), P1 = C.paramInt(1);
    std::vector<Expr> Pool = {Expr(P0), Expr(P1), C.intConst(3),
                              C.rcInt(static_cast<int>(Rng() % 100))};
    int X = static_cast<int>(Rng() % 2000) - 1000;
    int Y = static_cast<int>(Rng() % 2000) - 1000;
    std::vector<long long> Ref = {X, Y, 3,
                                  static_cast<long long>(Pool[3].node()->IntVal)};
    auto W32 = [](long long V) {
      return static_cast<long long>(static_cast<std::int32_t>(V));
    };
    int Steps = 4 + static_cast<int>(Rng() % 12);
    for (int S = 0; S < Steps; ++S) {
      std::size_t I1 = Rng() % Pool.size(), I2 = Rng() % Pool.size();
      switch (Rng() % 4) {
      case 0:
        Pool.push_back(Pool[I1] + Pool[I2]);
        Ref.push_back(W32(Ref[I1] + Ref[I2]));
        break;
      case 1:
        Pool.push_back(Pool[I1] - Pool[I2]);
        Ref.push_back(W32(Ref[I1] - Ref[I2]));
        break;
      case 2:
        Pool.push_back(Pool[I1] * Pool[I2]);
        Ref.push_back(W32(Ref[I1] * Ref[I2]));
        break;
      default:
        Pool.push_back(Pool[I1] ^ Pool[I2]);
        Ref.push_back(W32(Ref[I1] ^ Ref[I2]));
        break;
      }
    }
    CompiledFn F = compileFn(C, C.ret(Pool.back()), EvalType::Int, opts());
    EXPECT_EQ(F.as<int(int, int)>()(X, Y), static_cast<int>(Ref.back()))
        << "trial " << Trial;
  }
}

TEST_P(CoreBothBackends, CompositionReusedTwice) {
  // Referencing one cspec from two sites regenerates its code at each.
  Context C;
  VSpec A = C.paramInt(0);
  Expr Shared = Expr(A) * C.intConst(7);
  Expr E = Shared + Shared;
  CompiledFn F = compileFn(C, C.ret(E), EvalType::Int, opts());
  EXPECT_EQ(F.as<int(int)>()(3), 42);
}

TEST(CoreStats, ClosureBytesGrow) {
  Context C;
  std::size_t B0 = C.closureBytes();
  Expr E = C.intConst(1);
  for (int I = 0; I < 100; ++I)
    E = E + C.intConst(I);
  EXPECT_GT(C.closureBytes(), B0);
}

TEST(CoreStats, StatsPopulated) {
  Context C;
  VSpec A = C.paramInt(0);
  CompileOptions O;
  O.Backend = BackendKind::ICode;
  CompiledFn F = compileFn(C, C.ret(Expr(A) + C.intConst(1)), EvalType::Int, O);
  EXPECT_GT(F.stats().CyclesTotal, 0u);
  EXPECT_GT(F.stats().CyclesWalk, 0u);
  EXPECT_GT(F.stats().MachineInstrs, 0u);
  EXPECT_GT(F.stats().CodeBytes, 0u);
  EXPECT_GT(F.stats().ICode.CyclesRegAlloc, 0u);
}

TEST(CoreOptions, RandomizedPlacementWorks) {
  Context C;
  CompileOptions O;
  O.Placement = CodePlacement::Randomized;
  CompiledFn F = compileFn(C, C.ret(C.intConst(5)), EvalType::Int, O);
  EXPECT_EQ(F.as<int()>()(), 5);
}

TEST(CoreOptions, GraphColorBackendWorks) {
  Context C;
  VSpec A = C.paramInt(0);
  CompileOptions O;
  O.Backend = BackendKind::ICode;
  O.RegAlloc = icode::RegAllocKind::GraphColor;
  CompiledFn F =
      compileFn(C, C.ret(Expr(A) * C.intConst(3)), EvalType::Int, O);
  EXPECT_EQ(F.as<int(int)>()(14), 42);
}

} // namespace
