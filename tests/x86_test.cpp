//===- tests/x86_test.cpp - x86-64 encoder tests --------------------------===//
//
// Two strategies: golden-byte checks against hand-verified encodings, and
// end-to-end execution of small assembled functions.
//
//===----------------------------------------------------------------------===//

#include "x86/X86Assembler.h"
#include "x86/X86Decoder.h"

#include "support/CodeBuffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace tcc;
using namespace tcc::x86;

namespace {

std::vector<std::uint8_t> capture(void (*Emit)(Assembler &)) {
  std::uint8_t Buf[64];
  Assembler A(Buf, sizeof(Buf));
  Emit(A);
  return std::vector<std::uint8_t>(Buf, Buf + A.pc());
}

#define EXPECT_BYTES(EMIT, ...)                                                \
  do {                                                                         \
    std::vector<std::uint8_t> Got = capture([](Assembler &A) { EMIT; });       \
    std::vector<std::uint8_t> Want = {__VA_ARGS__};                            \
    EXPECT_EQ(Got, Want);                                                      \
  } while (0)

TEST(X86Golden, MovRegReg) {
  EXPECT_BYTES(A.movRR64(RAX, RBX), 0x48, 0x8B, 0xC3);
  EXPECT_BYTES(A.movRR32(RCX, RDX), 0x8B, 0xCA);
  EXPECT_BYTES(A.movRR64(R8, R9), 0x4D, 0x8B, 0xC1);
  EXPECT_BYTES(A.movRR64(RAX, R15), 0x49, 0x8B, 0xC7);
}

TEST(X86Golden, MovImm) {
  EXPECT_BYTES(A.movRI32(RAX, 0x2A), 0xB8, 0x2A, 0x00, 0x00, 0x00);
  EXPECT_BYTES(A.movRI32(R10, 1), 0x41, 0xBA, 0x01, 0x00, 0x00, 0x00);
  EXPECT_BYTES(A.movRI64(RAX, 0x1122334455667788ull), 0x48, 0xB8, 0x88, 0x77,
               0x66, 0x55, 0x44, 0x33, 0x22, 0x11);
  EXPECT_BYTES(A.movRI64SExt32(RBX, -1), 0x48, 0xC7, 0xC3, 0xFF, 0xFF, 0xFF,
               0xFF);
}

TEST(X86Golden, Alu) {
  EXPECT_BYTES(A.addRR32(RCX, RDX), 0x03, 0xCA);
  EXPECT_BYTES(A.subRR64(RAX, RBX), 0x48, 0x2B, 0xC3);
  EXPECT_BYTES(A.imulRR32(RBX, RCX), 0x0F, 0xAF, 0xD9);
  EXPECT_BYTES(A.addRI32(RAX, 5), 0x83, 0xC0, 0x05);
  EXPECT_BYTES(A.addRI32(RAX, 300), 0x81, 0xC0, 0x2C, 0x01, 0x00, 0x00);
  EXPECT_BYTES(A.cmpRI32(RBX, -2), 0x83, 0xFB, 0xFE);
}

TEST(X86Golden, MemoryOperands) {
  // RBP base forces a displacement byte even when zero.
  EXPECT_BYTES(A.loadRM32(RAX, RBP, 0), 0x8B, 0x45, 0x00);
  // RSP base forces a SIB byte.
  EXPECT_BYTES(A.loadRM32(RAX, RSP, 8), 0x8B, 0x44, 0x24, 0x08);
  EXPECT_BYTES(A.storeMR64(RBP, -8, RAX), 0x48, 0x89, 0x45, 0xF8);
  EXPECT_BYTES(A.loadRM64(RCX, RBX, 0), 0x48, 0x8B, 0x0B);
  // disp32 form.
  EXPECT_BYTES(A.loadRM32(RAX, RBX, 1024), 0x8B, 0x83, 0x00, 0x04, 0x00, 0x00);
  // R13 is an RBP-class base and needs the disp8 form too.
  EXPECT_BYTES(A.loadRM64(RAX, R13, 0), 0x49, 0x8B, 0x45, 0x00);
  // R12 is an RSP-class base and needs a SIB byte.
  EXPECT_BYTES(A.loadRM64(RAX, R12, 0), 0x49, 0x8B, 0x04, 0x24);
}

TEST(X86Golden, PushPopRet) {
  EXPECT_BYTES(A.push(RBP), 0x55);
  EXPECT_BYTES(A.push(R12), 0x41, 0x54);
  EXPECT_BYTES(A.pop(R15), 0x41, 0x5F);
  EXPECT_BYTES(A.ret(), 0xC3);
}

TEST(X86Golden, SetccAndShift) {
  EXPECT_BYTES(A.setcc(Cond::E, RBX), 0x0F, 0x94, 0xC3);
  // SIL needs a REX prefix for byte addressing.
  EXPECT_BYTES(A.setcc(Cond::L, RSI), 0x40, 0x0F, 0x9C, 0xC6);
  EXPECT_BYTES(A.shlRI32(RAX, 4), 0xC1, 0xE0, 0x04);
  EXPECT_BYTES(A.sarCl32(RBX), 0xD3, 0xFB);
}

TEST(X86Golden, Branches) {
  std::uint8_t Buf[64];
  Assembler A(Buf, sizeof(Buf));
  std::size_t Disp = A.jcc(Cond::NE); // 0F 85 <4 bytes>
  A.nop();
  A.patchBranch(Disp, A.pc());
  EXPECT_EQ(Buf[0], 0x0F);
  EXPECT_EQ(Buf[1], 0x85);
  EXPECT_EQ(A.read32(Disp), 1u) << "branch over one nop";
}

TEST(X86Golden, InstructionCounter) {
  std::uint8_t Buf[64];
  Assembler A(Buf, sizeof(Buf));
  A.movRI32(RAX, 1);
  A.addRR32(RAX, RBX);
  A.loadRM32(RCX, RBP, -4);
  A.ret();
  EXPECT_EQ(A.instructionsEmitted(), 4u);
}

// --- Execution tests --------------------------------------------------------

/// Assembles through \p Emit and runs the result as int64(*)(int64, int64).
std::int64_t run2(void (*Emit)(Assembler &), std::int64_t X, std::int64_t Y) {
  CodeRegion R(4096, CodePlacement::Sequential);
  Assembler A(R.base(), R.capacity());
  Emit(A);
  R.makeExecutable();
  return reinterpret_cast<std::int64_t (*)(std::int64_t, std::int64_t)>(
      R.base())(X, Y);
}

TEST(X86Exec, AddArgs) {
  auto Emit = [](Assembler &A) {
    A.movRR64(RAX, RDI);
    A.addRR64(RAX, RSI);
    A.ret();
  };
  EXPECT_EQ(run2(Emit, 2, 3), 5);
  EXPECT_EQ(run2(Emit, -100, 1), -99);
}

TEST(X86Exec, MulImm) {
  auto Emit = [](Assembler &A) {
    A.imulRRI64(RAX, RDI, 7);
    A.ret();
  };
  EXPECT_EQ(run2(Emit, 6, 0), 42);
  EXPECT_EQ(run2(Emit, -3, 0), -21);
}

TEST(X86Exec, DivSigned32) {
  auto Emit = [](Assembler &A) {
    A.movRR32(RAX, RDI);
    A.cdq();
    A.idivR32(RSI);
    A.ret();
  };
  EXPECT_EQ(static_cast<std::int32_t>(run2(Emit, 42, 5)), 8);
  EXPECT_EQ(static_cast<std::int32_t>(run2(Emit, -42, 5)), -8)
      << "C truncation semantics";
}

TEST(X86Exec, LoadStore) {
  auto Emit = [](Assembler &A) {
    // *(int64*)rdi = 99; return *(int64*)rdi + rsi
    A.movRI64SExt32(RAX, 99);
    A.storeMR64(RDI, 0, RAX);
    A.loadRM64(RAX, RDI, 0);
    A.addRR64(RAX, RSI);
    A.ret();
  };
  std::int64_t Cell = 0;
  EXPECT_EQ(run2(Emit, reinterpret_cast<std::int64_t>(&Cell), 1), 100);
  EXPECT_EQ(Cell, 99);
}

TEST(X86Exec, ConditionalBranch) {
  // return x < y ? 1 : 2  (signed)
  auto Emit = [](Assembler &A) {
    A.cmpRR64(RDI, RSI);
    std::size_t TakeOne = A.jcc(Cond::L);
    A.movRI32(RAX, 2);
    A.ret();
    A.patchBranch(TakeOne, A.pc());
    A.movRI32(RAX, 1);
    A.ret();
  };
  EXPECT_EQ(run2(Emit, 1, 2), 1);
  EXPECT_EQ(run2(Emit, 2, 1), 2);
  EXPECT_EQ(run2(Emit, -5, 0), 1);
}

TEST(X86Exec, DoubleArith) {
  // double f(double a, double b) { return a * b + a; }
  CodeRegion R(4096, CodePlacement::Sequential);
  Assembler A(R.base(), R.capacity());
  A.movsdRR(XMM2, XMM0);
  A.mulsd(XMM2, XMM1);
  A.addsd(XMM2, XMM0);
  A.movsdRR(XMM0, XMM2);
  A.ret();
  R.makeExecutable();
  auto Fn = reinterpret_cast<double (*)(double, double)>(R.base());
  EXPECT_DOUBLE_EQ(Fn(3.0, 4.0), 15.0);
  EXPECT_DOUBLE_EQ(Fn(-1.5, 2.0), -4.5);
}

TEST(X86Exec, IntToDoubleAndBack) {
  CodeRegion R(4096, CodePlacement::Sequential);
  Assembler A(R.base(), R.capacity());
  // return (int64)((double)rdi / 2.0)
  A.cvtsi2sd64(XMM0, RDI);
  double Half = 2.0;
  std::uint64_t Bits;
  std::memcpy(&Bits, &Half, 8);
  A.movRI64(RAX, Bits);
  A.movqXR(XMM1, RAX);
  A.divsd(XMM0, XMM1);
  A.cvttsd2si64(RAX, XMM0);
  A.ret();
  R.makeExecutable();
  auto Fn = reinterpret_cast<std::int64_t (*)(std::int64_t)>(R.base());
  EXPECT_EQ(Fn(9), 4);
  EXPECT_EQ(Fn(-9), -4);
}

TEST(X86Exec, MovqRoundTrip) {
  CodeRegion R(4096, CodePlacement::Sequential);
  Assembler A(R.base(), R.capacity());
  A.movqXR(XMM3, RDI);
  A.movqRX(RAX, XMM3);
  A.ret();
  R.makeExecutable();
  auto Fn = reinterpret_cast<std::int64_t (*)(std::int64_t)>(R.base());
  EXPECT_EQ(Fn(0x123456789ABCDEF0ll), 0x123456789ABCDEF0ll);
}

// --- Strict-decoder coverage of the stencil renderer's vocabulary ----------
//
// The PCODE stencil library is rendered by driving this encoder with
// sentinel operands and then strictly decoded at build time; these tests
// pin the decode side of that contract directly. Every form the renderer
// emits must decode, and the forms the renderer was *constrained away
// from* (condition nibbles the back end never generates) must stay
// rejected — that rejection is what keeps the library inside the audited
// vocabulary.

std::vector<std::uint8_t> emit(void (*Emit)(Assembler &)) {
  std::uint8_t Buf[64];
  Assembler A(Buf, sizeof(Buf));
  Emit(A);
  return std::vector<std::uint8_t>(Buf, Buf + A.pc());
}

bool decodesAs(const std::vector<std::uint8_t> &Code, InstrClass Want) {
  Decoded D;
  const char *Err = nullptr;
  if (!decodeOne(Code.data(), Code.size(), 0, D, &Err))
    return false;
  return D.Cls == Want && D.Len == Code.size();
}

TEST(Decoder, AcceptsStencilImmediateForms) {
  // Both ALU immediate widths (83 /digit ib and 81 /digit id): the stencil
  // library renders a distinct stencil per width class.
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.addRI32(RBX, 5); }),
                        InstrClass::AluRI));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.addRI32(RBX, 100000); }),
                        InstrClass::AluRI));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.cmpRI32(R12, -129); }),
                        InstrClass::AluRI));
  // Shift-by-immediate is always C1 /digit ib — never the shift-by-1 short
  // form — so any count patches into the same hole.
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.shlRI32(RBX, 1); }),
                        InstrClass::ShiftImm));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.sarRI32(R13, 31); }),
                        InstrClass::ShiftImm));
  // The three mov-immediate size classes (SetI / SetL stencils).
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.movRI32(R14, 7); }),
                        InstrClass::MovImm32));
  EXPECT_TRUE(
      decodesAs(emit([](Assembler &A) { A.movRI64SExt32(R14, -7); }),
                InstrClass::MovImmSExt));
  EXPECT_TRUE(decodesAs(
      emit([](Assembler &A) { A.movRI64(R14, 0x0123456789ABCDEFull); }),
      InstrClass::MovImm64));
}

TEST(Decoder, AcceptsStencilMemoryForms) {
  // All three displacement classes over pool registers, including the two
  // encoder specials: R12 base forces a SIB byte, R13 base forces a
  // displacement even when zero.
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.loadRM32(RBX, R15, 0); }),
                        InstrClass::Load));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.loadRM32(RBX, R15, 8); }),
                        InstrClass::Load));
  EXPECT_TRUE(
      decodesAs(emit([](Assembler &A) { A.loadRM32(RBX, R15, 1000); }),
                InstrClass::Load));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.loadRM32(RBX, R12, 0); }),
                        InstrClass::Load));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.loadRM32(RBX, R13, 0); }),
                        InstrClass::Load));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.storeMR32(R13, 0, RBX); }),
                        InstrClass::Store32));
  EXPECT_TRUE(decodesAs(emit([](Assembler &A) { A.storeMR64(R12, 40, R8); }),
                        InstrClass::Store64));
}

TEST(Decoder, AcceptsStencilSetccForBackendConditions) {
  // The renderer emits setcc+movzx only for the condition nibbles the back
  // end's compare lowering produces.
  for (Cond C : {Cond::B, Cond::AE, Cond::E, Cond::NE, Cond::BE, Cond::A,
                 Cond::L, Cond::GE, Cond::LE, Cond::G}) {
    std::uint8_t Buf[16];
    Assembler A(Buf, sizeof(Buf));
    A.setcc(C, RBX);
    Decoded D;
    const char *Err = nullptr;
    ASSERT_TRUE(decodeOne(Buf, A.pc(), 0, D, &Err))
        << "cond " << static_cast<int>(C) << ": " << (Err ? Err : "");
    EXPECT_EQ(D.Cls, InstrClass::Setcc);
  }
}

TEST(Decoder, RejectsConditionsTheRendererSkips) {
  // 0F 90+cc with a nibble outside the back end's set (O/NO/S/NS/P/NP):
  // the stencil builder leaves these SetZx entries unrendered, and the
  // decoder keeps rejecting the raw encodings.
  for (std::uint8_t Nibble : {0x0, 0x1, 0x8, 0x9, 0xA, 0xB}) {
    const std::uint8_t Code[] = {0x0F, static_cast<std::uint8_t>(0x90 | Nibble),
                                 0xC3};
    Decoded D;
    const char *Err = nullptr;
    EXPECT_FALSE(decodeOne(Code, sizeof(Code), 0, D, &Err))
        << "nibble " << static_cast<int>(Nibble);
  }
}

TEST(Decoder, RejectsOutOfRangeShiftImmediate) {
  // C1 /4 with a count the encoder can never produce (> 63). A stencil
  // patch writing such a byte would be caught at the machine-audit layer.
  const std::uint8_t Code[] = {0xC1, 0xE0, 64};
  Decoded D;
  const char *Err = nullptr;
  EXPECT_FALSE(decodeOne(Code, sizeof(Code), 0, D, &Err));
}

TEST(X86Exec, CallThroughRegister) {
  CodeRegion R(4096, CodePlacement::Sequential);
  Assembler A(R.base(), R.capacity());
  // Forward rdi to a helper and add 1 to its result.
  auto Helper = +[](std::int64_t X) { return X * 10; };
  A.push(RBX); // keep stack 16-byte aligned at the call
  A.movRI64(RAX, reinterpret_cast<std::uintptr_t>(Helper));
  A.callR(RAX);
  A.addRI64(RAX, 1);
  A.pop(RBX);
  A.ret();
  R.makeExecutable();
  auto Fn = reinterpret_cast<std::int64_t (*)(std::int64_t)>(R.base());
  EXPECT_EQ(Fn(4), 41);
}

} // namespace
