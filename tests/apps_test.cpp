//===- tests/apps_test.cpp - Benchmark application correctness ------------===//
//
// Every benchmark program from the paper's evaluation: the dynamic version
// (both back ends) must agree with the -O0 and -O2 static baselines.
//
//===----------------------------------------------------------------------===//

#include "apps/BinSearch.h"
#include "apps/Blur.h"
#include "apps/Compose.h"
#include "apps/DotProduct.h"
#include "apps/Hash.h"
#include "apps/Heapsort.h"
#include "apps/Marshal.h"
#include "apps/MatScale.h"
#include "apps/Newton.h"
#include "apps/Power.h"
#include "apps/Query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace tcc;
using namespace tcc::apps;
using namespace tcc::core;

namespace {

class AppsBothBackends : public ::testing::TestWithParam<BackendKind> {
protected:
  CompileOptions opts() const {
    CompileOptions O;
    O.Backend = GetParam();
    return O;
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, AppsBothBackends,
                         ::testing::Values(BackendKind::VCode,
                                           BackendKind::ICode),
                         [](const auto &Info) {
                           return Info.param == BackendKind::VCode ? "VCode"
                                                                   : "ICode";
                         });

TEST_P(AppsBothBackends, Hash) {
  HashApp App;
  CompiledFn F = App.specialize(opts());
  auto *Lookup = F.as<int(int)>();
  EXPECT_EQ(Lookup(App.presentKey()), App.lookupStaticO0(App.presentKey()));
  EXPECT_EQ(Lookup(App.presentKey()), App.lookupStaticO2(App.presentKey()));
  EXPECT_NE(Lookup(App.presentKey()), -1);
  EXPECT_EQ(Lookup(App.absentKey()), -1);
  // Sweep random keys: present or not, all must agree with the baseline.
  std::mt19937 Rng(11);
  for (int I = 0; I < 200; ++I) {
    int K = static_cast<int>(Rng() % 1000000) + 1;
    EXPECT_EQ(Lookup(K), App.lookupStaticO2(K)) << "key " << K;
  }
}

TEST_P(AppsBothBackends, MatScale) {
  MatScaleApp App;
  CompiledFn F = App.specialize(opts());
  auto M0 = App.matrix();
  auto M1 = App.matrix();
  App.scaleStaticO2(M0.data());
  F.as<void(int *)>()(M1.data());
  EXPECT_EQ(M0, M1);
}

TEST_P(AppsBothBackends, Power) {
  for (unsigned E : {0u, 1u, 2u, 5u, 13u, 30u}) {
    PowerApp App(E);
    CompiledFn F = App.specialize(opts());
    auto *P = F.as<int(int)>();
    for (int X : {0, 1, 2, 3, -2, 7})
      EXPECT_EQ(P(X), App.powStaticO2(X)) << X << "^" << E;
  }
}

TEST_P(AppsBothBackends, BinSearch) {
  BinSearchApp App(16);
  CompiledFn F = App.specialize(opts());
  auto *Find = F.as<int(int)>();
  for (std::size_t I = 0; I < App.data().size(); ++I)
    EXPECT_EQ(Find(App.data()[I]), static_cast<int>(I));
  EXPECT_EQ(Find(App.absentKey()), -1);
  EXPECT_EQ(Find(-1000), -1);
  // Larger table exercises deeper spec-time recursion.
  BinSearchApp Big(128, 77);
  CompiledFn FB = Big.specialize(opts());
  auto *FindB = FB.as<int(int)>();
  for (std::size_t I = 0; I < Big.data().size(); I += 7)
    EXPECT_EQ(FindB(Big.data()[I]), static_cast<int>(I));
}

TEST_P(AppsBothBackends, DotProduct) {
  DotProductApp App(64, 0.5);
  CompiledFn F = App.specialize(opts());
  auto *Dot = F.as<int(const int *)>();
  std::mt19937 Rng(13);
  std::vector<int> Col(App.size());
  for (int T = 0; T < 20; ++T) {
    for (int &V : Col)
      V = static_cast<int>(Rng() % 2000) - 1000;
    EXPECT_EQ(Dot(Col.data()), App.dotStaticO2(Col.data()));
    EXPECT_EQ(Dot(Col.data()), App.dotStaticO0(Col.data()));
  }
}

TEST_P(AppsBothBackends, Newton) {
  NewtonApp App;
  CompiledFn F = App.specialize(opts());
  auto *Solve = F.as<double(double)>();
  for (double X0 : {0.5, 3.0, 10.0}) {
    double Got = Solve(X0);
    double Want = App.solveStaticO2(X0);
    EXPECT_NEAR(Got, Want, 1e-9) << "from " << X0;
    double Res = (Got + 1) * (Got + 1) * (Got + 1);
    EXPECT_NEAR(Res, 0.0, 1e-6) << "must be near the root -1";
  }
}

TEST_P(AppsBothBackends, Compose) {
  ComposeApp App;
  CompiledFn F = App.specialize(opts());
  auto *Pipe = F.as<int(std::uint32_t *)>();
  std::vector<std::uint32_t> D0(App.words()), D1(App.words());
  std::uint32_t S0 = App.pipeStaticO2(D0.data());
  auto S1 = static_cast<std::uint32_t>(Pipe(D1.data()));
  EXPECT_EQ(S0, S1);
  EXPECT_EQ(D0, D1);
}

TEST_P(AppsBothBackends, Query) {
  QueryApp App(2000);
  CompiledFn F = App.specialize(App.benchmarkQuery(), opts());
  auto *Match = F.as<int(const Record *)>();
  int CDyn = App.countCompiled(Match);
  EXPECT_EQ(CDyn, App.countStaticO0(App.benchmarkQuery()));
  EXPECT_EQ(CDyn, App.countStaticO2(App.benchmarkQuery()));
  EXPECT_GT(CDyn, 0);
  EXPECT_LT(CDyn, 2000);
  // Per-record agreement, not just the aggregate.
  for (unsigned I = 0; I < 100; ++I) {
    const Record &R = App.records()[I * 17 % App.records().size()];
    EXPECT_EQ(Match(&R), QueryApp::matchStatic(App.benchmarkQuery(), &R))
        << "record " << I;
  }
}

TEST_P(AppsBothBackends, Heapsort) {
  HeapsortApp App(500);
  CompiledFn F = App.specialize(opts());
  auto *Sort = F.as<void(HeapRecord *)>();
  auto A = App.data();
  auto B = App.data();
  App.sortStaticO2(A.data());
  Sort(B.data());
  for (unsigned I = 0; I < App.count(); ++I) {
    EXPECT_EQ(A[I].Key, B[I].Key) << "index " << I;
    EXPECT_EQ(A[I].Payload[0], B[I].Payload[0]) << "payload must move with "
                                                   "its key, index "
                                                << I;
  }
  // Sortedness.
  for (unsigned I = 1; I < App.count(); ++I)
    EXPECT_LE(B[I - 1].Key, B[I].Key);
}

TEST_P(AppsBothBackends, Marshal) {
  MarshalApp App;
  CompiledFn F = App.buildMarshaler(opts());
  auto *M = F.as<void(int, int, int, int, int, std::uint8_t *)>();
  std::uint8_t BufDyn[32] = {0}, BufStat[32] = {0};
  M(11, -22, 33, -44, 55, BufDyn);
  MarshalApp::marshal5StaticO2(BufStat, 11, -22, 33, -44, 55);
  EXPECT_EQ(0, std::memcmp(BufDyn, BufStat, 20));
}

static int SumOf5(int A, int B, int C, int D, int E) {
  return A + 2 * B + 3 * C + 4 * D + 5 * E;
}

TEST_P(AppsBothBackends, Unmarshal) {
  MarshalApp App;
  CompiledFn F = App.buildUnmarshaler(
      reinterpret_cast<const void *>(&SumOf5), opts());
  auto *U = F.as<int(const std::uint8_t *)>();
  std::uint8_t Buf[32];
  MarshalApp::marshal5StaticO2(Buf, 1, 2, 3, 4, 5);
  EXPECT_EQ(U(Buf), SumOf5(1, 2, 3, 4, 5));
  EXPECT_EQ(U(Buf), MarshalApp::unmarshal5StaticO2(Buf, &SumOf5));
}

TEST_P(AppsBothBackends, Blur) {
  BlurApp App(64, 48, 1); // Small image keeps the test fast.
  CompiledFn F = App.specialize(opts());
  auto *Blur = F.as<void(std::int32_t *)>();
  std::vector<std::int32_t> D0(App.pixels()), D1(App.pixels());
  App.blurStaticO2(D0.data());
  Blur(D1.data());
  EXPECT_EQ(D0, D1);
  // Boundary pixels average fewer neighbors; check a corner by hand.
  const std::int32_t *S = App.source();
  int W = static_cast<int>(App.width());
  int Corner = (S[0] + S[1] + S[W] + S[W + 1]) / 4;
  EXPECT_EQ(D1[0], Corner);
}

TEST_P(AppsBothBackends, BlurLargerRadius) {
  BlurApp App(32, 32, 2);
  CompiledFn F = App.specialize(opts());
  std::vector<std::int32_t> D0(App.pixels()), D1(App.pixels());
  App.blurStaticO0(D0.data());
  F.as<void(std::int32_t *)>()(D1.data());
  EXPECT_EQ(D0, D1);
}

} // namespace
