//===- tests/cache_test.cpp - Code cache / region pool tests --------------===//
//
// Covers the memoizing instantiation path: structural key derivation,
// hit/miss identity, LRU eviction under a byte budget, eviction safety for
// live handles, region pooling, and a multi-threaded getOrCompile stress
// (run under -fsanitize=thread in CI).
//
//===----------------------------------------------------------------------===//

#include "apps/Hash.h"
#include "apps/Marshal.h"
#include "apps/Power.h"
#include "apps/Query.h"
#include "cache/CompileService.h"
#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "observability/Metrics.h"
#include "observability/Names.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;
using namespace tcc::cache;

namespace {

SpecKey keyOf(int Mul, int Add,
              const CompileOptions &Opts = CompileOptions()) {
  Context C;
  VSpec X = C.paramInt(0);
  Stmt Body = C.ret(Expr(X) * C.rcInt(Mul) + C.rcInt(Add));
  return buildSpecKey(C, Body, EvalType::Int, Opts);
}

// --- SpecKey ---------------------------------------------------------------

TEST(SpecKey, EqualAcrossIndependentlyBuiltContexts) {
  SpecKey A = keyOf(3, 7);
  SpecKey B = keyOf(3, 7);
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_TRUE(A == B);
  EXPECT_TRUE(A.Cacheable);
}

TEST(SpecKey, RuntimeConstantsChangeTheKey) {
  EXPECT_FALSE(keyOf(3, 7) == keyOf(3, 8));
  EXPECT_FALSE(keyOf(3, 7) == keyOf(4, 7));
}

TEST(SpecKey, CompileOptionsChangeTheKey) {
  CompileOptions VC;
  CompileOptions IC;
  IC.Backend = BackendKind::ICode;
  EXPECT_FALSE(keyOf(3, 7, VC) == keyOf(3, 7, IC));

  CompileOptions GC = IC;
  GC.RegAlloc = icode::RegAllocKind::GraphColor;
  EXPECT_FALSE(keyOf(3, 7, IC) == keyOf(3, 7, GC));
}

TEST(SpecKey, BackendsOccupyDistinctSlots) {
  // BackendKind is the first serialized option byte, so the three back ends
  // can never share a cache entry — even PCODE, whose output is
  // byte-identical to VCODE by construction. Pairwise over the exhaustive
  // backend set, keys must differ while each remains self-equal.
  const BackendKind All[] = {BackendKind::VCode, BackendKind::ICode,
                             BackendKind::PCode};
  for (BackendKind A : All) {
    CompileOptions OA;
    OA.Backend = A;
    EXPECT_TRUE(keyOf(3, 7, OA) == keyOf(3, 7, OA));
    for (BackendKind B : All) {
      if (A == B)
        continue;
      CompileOptions OB;
      OB.Backend = B;
      EXPECT_FALSE(keyOf(3, 7, OA) == keyOf(3, 7, OB))
          << static_cast<int>(A) << " vs " << static_cast<int>(B);
    }
  }
}

TEST(CompileService, ThreeBackendsThreeEntries) {
  CompileService S;
  apps::PowerApp P(13);
  CompileOptions VC, IC, PC;
  VC.Backend = BackendKind::VCode;
  IC.Backend = BackendKind::ICode;
  PC.Backend = BackendKind::PCode;
  FnHandle A = P.specializeCached(S, VC);
  FnHandle B = P.specializeCached(S, IC);
  FnHandle C = P.specializeCached(S, PC);
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(B.get(), C.get());
  EXPECT_NE(A.get(), C.get());
  EXPECT_EQ(S.cache().stats().Insertions, 3u);
  EXPECT_EQ(A->as<int(int)>()(3), 1594323);
  EXPECT_EQ(B->as<int(int)>()(3), 1594323);
  EXPECT_EQ(C->as<int(int)>()(3), 1594323);
  // Re-requesting each hits its own slot — no cross-backend aliasing.
  EXPECT_EQ(P.specializeCached(S, PC).get(), C.get());
  EXPECT_EQ(S.cache().stats().Insertions, 3u);
}

TEST(SpecKey, PoolDoesNotChangeTheKey) {
  RegionPool Pool;
  CompileOptions WithPool;
  WithPool.Pool = &Pool;
  EXPECT_TRUE(keyOf(3, 7) == keyOf(3, 7, WithPool));
}

TEST(SpecKey, RtEvalOverMemoryIsUncacheable) {
  static int Cell = 41;
  Context C;
  Stmt Body = C.ret(C.rtEval(C.fvInt(&Cell)) + C.intConst(1));
  SpecKey K = buildSpecKey(C, Body, EvalType::Int, CompileOptions());
  EXPECT_FALSE(K.Cacheable);
}

TEST(SpecKey, RtEvalOverPureConstantsIsCacheable) {
  Context C;
  Stmt Body = C.ret(C.rtEval(C.intConst(6) * C.intConst(7)));
  SpecKey K = buildSpecKey(C, Body, EvalType::Int, CompileOptions());
  EXPECT_TRUE(K.Cacheable);
}

// --- Hit/miss identity ------------------------------------------------------

TEST(CompileService, SameSpecSameConstantsHitsIdenticalEntry) {
  CompileService S;
  apps::QueryApp App(64);
  FnHandle A = App.specializeCached(App.benchmarkQuery(), S);
  FnHandle B = App.specializeCached(App.benchmarkQuery(), S);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(A->entry(), B->entry());
  CacheStats St = S.cache().stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Insertions, 1u);
  EXPECT_EQ(App.countCompiled(A->as<int(const apps::Record *)>()),
            App.countStaticO2(App.benchmarkQuery()));
}

TEST(CompileService, PrebuiltKeyLookupMatchesGetOrCompile) {
  CompileService S;
  apps::PowerApp P(13);
  SpecKey K = P.cacheKey();
  EXPECT_FALSE(S.lookup(K)); // Nothing compiled yet.
  FnHandle A = P.specializeCached(S);
  FnHandle B = S.lookup(K); // Steady-state path: probe with the kept key.
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(B->as<int(int)>()(2), 8192);

  // The key matches what getOrCompile derived internally.
  apps::QueryApp Q(32);
  SpecKey QK = Q.cacheKey(Q.benchmarkQuery());
  EXPECT_FALSE(S.lookup(QK));
  FnHandle QA = Q.specializeCached(Q.benchmarkQuery(), S);
  EXPECT_EQ(S.lookup(QK).get(), QA.get());
}

TEST(CompileService, DifferentRuntimeConstantsGetDistinctEntries) {
  CompileService S;
  apps::PowerApp P3(3), P5(5);
  FnHandle A = P3.specializeCached(S);
  FnHandle B = P5.specializeCached(S);
  ASSERT_TRUE(A && B);
  EXPECT_NE(A.get(), B.get());
  EXPECT_EQ(A->as<int(int)>()(2), 8);
  EXPECT_EQ(B->as<int(int)>()(2), 32);
  EXPECT_EQ(S.cache().stats().Insertions, 2u);
}

TEST(CompileService, BackendAndRegAllocDistinguishEntries) {
  CompileService S;
  apps::PowerApp P(13);
  CompileOptions VC;
  CompileOptions LS;
  LS.Backend = BackendKind::ICode;
  CompileOptions GC = LS;
  GC.RegAlloc = icode::RegAllocKind::GraphColor;
  FnHandle A = P.specializeCached(S, VC);
  FnHandle B = P.specializeCached(S, LS);
  FnHandle C = P.specializeCached(S, GC);
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(B.get(), C.get());
  EXPECT_EQ(S.cache().stats().Insertions, 3u);
  EXPECT_EQ(A->as<int(int)>()(3), 1594323);
  EXPECT_EQ(B->as<int(int)>()(3), 1594323);
  EXPECT_EQ(C->as<int(int)>()(3), 1594323);
}

TEST(CompileService, DistinctHashTablesDoNotCollide) {
  CompileService S;
  apps::HashApp T1(256, 100, 1), T2(256, 100, 2);
  FnHandle A = T1.specializeCached(S);
  FnHandle B = T2.specializeCached(S);
  EXPECT_NE(A.get(), B.get());
  EXPECT_EQ(A->as<int(int)>()(T1.presentKey()), T1.presentKey() * 2 + 1);
  EXPECT_EQ(B->as<int(int)>()(T2.presentKey()), T2.presentKey() * 2 + 1);
}

TEST(CompileService, MarshalRoundTripThroughCache) {
  CompileService S;
  apps::MarshalApp M("iiiii");
  FnHandle Mar = M.buildMarshalerCached(S);
  auto Sum5 = +[](int A, int B, int C, int D, int E) {
    return A + B * 10 + C * 100 + D * 1000 + E * 10000;
  };
  FnHandle Unm =
      M.buildUnmarshalerCached(reinterpret_cast<const void *>(Sum5), S);
  std::uint8_t Buf[20];
  Mar->as<void(int, int, int, int, int, std::uint8_t *)>()(1, 2, 3, 4, 5,
                                                           Buf);
  EXPECT_EQ(Unm->as<int(const std::uint8_t *)>()(Buf), 54321);
  // Same format + same target → both hits.
  FnHandle Mar2 = M.buildMarshalerCached(S);
  FnHandle Unm2 =
      M.buildUnmarshalerCached(reinterpret_cast<const void *>(Sum5), S);
  EXPECT_EQ(Mar.get(), Mar2.get());
  EXPECT_EQ(Unm.get(), Unm2.get());
}

TEST(CompileService, UncacheableSpecsRecompileAndTrackMemory) {
  CompileService S;
  static int Cell;
  Cell = 10;
  auto Build = [&] {
    Context C;
    Stmt Body = C.ret(C.rtEval(C.fvInt(&Cell)) + C.intConst(1));
    return S.getOrCompile(C, Body, EvalType::Int);
  };
  FnHandle A = Build();
  EXPECT_EQ(A->as<int()>()(), 11);
  Cell = 20; // The $-captured immediate must be re-read, not cached.
  FnHandle B = Build();
  EXPECT_EQ(B->as<int()>()(), 21);
  EXPECT_NE(A.get(), B.get());
  EXPECT_EQ(S.cache().stats().Insertions, 0u);
}

// --- Eviction ----------------------------------------------------------------

TEST(CompileService, LruEvictionUnderByteBudget) {
  ServiceConfig Cfg;
  Cfg.Shards = 1; // Deterministic LRU order.
  Cfg.MaxCodeBytes = 256;
  CompileService S(Cfg);

  apps::PowerApp P2(2);
  FnHandle First = P2.specializeCached(S);
  std::size_t OneFn = S.cache().stats().CodeBytes;
  ASSERT_GT(OneFn, 0u);

  // Insert enough distinct specs to overflow 256 bytes many times over.
  for (unsigned E = 3; E < 40; ++E) {
    apps::PowerApp P(E);
    FnHandle H = P.specializeCached(S);
    EXPECT_EQ(H->as<int(int)>()(1), 1);
  }
  CacheStats St = S.cache().stats();
  EXPECT_GT(St.Evictions, 0u);
  EXPECT_LE(St.CodeBytes, 256u + OneFn); // Budget, modulo the newest entry.

  // The cold-start entry was least recently used: re-requesting it misses
  // and recompiles into a fresh entry.
  FnHandle Again = P2.specializeCached(S);
  EXPECT_NE(Again.get(), First.get());
  // The evicted function is still alive and executable through our handle.
  EXPECT_EQ(First->as<int(int)>()(5), 25);
  EXPECT_EQ(Again->as<int(int)>()(5), 25);
}

TEST(CompileService, EvictedEntriesSurviveWhileHandleHeld) {
  ServiceConfig Cfg;
  Cfg.Shards = 1;
  Cfg.MaxCodeBytes = 64;
  CompileService S(Cfg);
  apps::QueryApp App(128);
  FnHandle Live = App.specializeCached(App.benchmarkQuery(), S);
  int Expected = App.countStaticO2(App.benchmarkQuery());
  for (unsigned E = 2; E < 34; ++E) {
    apps::PowerApp P(E);
    (void)P.specializeCached(S);
    // The held handle stays valid across every eviction wave.
    EXPECT_EQ(App.countCompiled(Live->as<int(const apps::Record *)>()),
              Expected);
  }
  EXPECT_GT(S.cache().stats().Evictions, 0u);
}

// --- Region pool ------------------------------------------------------------

TEST(RegionPoolTest, ReleasedRegionsAreReused) {
  RegionPool Pool;
  std::uint8_t *Base;
  {
    PooledRegion R = Pool.acquire(4096, CodePlacement::Sequential);
    Base = R->base();
    R->makeExecutable();
  } // Released: flipped writable, shelved.
  RegionPoolStats St = Pool.stats();
  EXPECT_EQ(St.Mapped, 1u);
  EXPECT_GT(St.FreeBytes, 0u);

  PooledRegion R2 = Pool.acquire(4096, CodePlacement::Sequential);
  EXPECT_EQ(R2->base(), Base);
  EXPECT_FALSE(R2->isExecutable());
  EXPECT_EQ(Pool.stats().Reused, 1u);
  // Writable again: emitting over it must not fault.
  R2->base()[0] = 0xC3;
}

TEST(RegionPoolTest, CapacityAndPlacementMustMatch) {
  RegionPool Pool;
  { PooledRegion R = Pool.acquire(4096, CodePlacement::Sequential); }
  PooledRegion Big = Pool.acquire(1 << 20, CodePlacement::Sequential);
  EXPECT_EQ(Pool.stats().Mapped, 2u); // 4 KiB region can't serve 1 MiB.
  EXPECT_GE(Big->capacity(), 1u << 20);
}

TEST(RegionPoolTest, CompileFnUsesThePool) {
  RegionPool Pool;
  CompileOptions Opts;
  Opts.Pool = &Pool;
  apps::PowerApp P(13);
  {
    CompiledFn F = P.specialize(Opts);
    EXPECT_EQ(F.as<int(int)>()(2), 8192);
  } // Fn destroyed → region back in the pool.
  EXPECT_EQ(Pool.stats().Mapped, 1u);
  {
    CompiledFn F = P.specialize(Opts);
    EXPECT_EQ(F.as<int(int)>()(2), 8192);
  }
  EXPECT_EQ(Pool.stats().Reused, 1u);
  EXPECT_EQ(Pool.stats().Mapped, 1u); // No second mmap.
}

// --- Concurrency -------------------------------------------------------------

TEST(CompileService, ConcurrentGetOrCompileStress) {
  CompileService S;
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Iters = 200;
  const unsigned Exponents[4] = {3, 7, 10, 13};
  const int Expected[4] = {8, 128, 1024, 8192}; // 2^e.

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < Iters; ++I) {
        unsigned Which = (T + I) % 4;
        apps::PowerApp P(Exponents[Which]);
        FnHandle H = P.specializeCached(S);
        if (!H || H->as<int(int)>()(2) != Expected[Which])
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  CacheStats St = S.cache().stats();
  // 4 distinct specs; racing threads may double-compile but the cache keeps
  // one entry per key.
  EXPECT_EQ(St.Entries, 4u);
  EXPECT_GE(St.Hits, NumThreads * Iters - 4u * NumThreads);
}

TEST(CompileService, SingleFlightCollapsesConcurrentColdMisses) {
  // All threads rush one cold key; exactly one compile may happen — the
  // rest must block on the leader's in-flight result.
  obs::Counter &Compiles =
      obs::MetricsRegistry::global().counter(obs::names::CompileCountVCode);
  for (unsigned Round = 0; Round < 20; ++Round) {
    CompileService S;
    apps::PowerApp P(13);
    constexpr unsigned NumThreads = 8;
    std::uint64_t Before = Compiles.value();

    std::atomic<unsigned> Ready{0};
    std::atomic<bool> Go{false};
    std::atomic<unsigned> Failures{0};
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T) {
      Threads.emplace_back([&] {
        Ready.fetch_add(1);
        while (!Go.load(std::memory_order_acquire))
          ;
        FnHandle H = P.specializeCached(S);
        if (!H || H->as<int(int)>()(2) != 8192)
          Failures.fetch_add(1, std::memory_order_relaxed);
      });
    }
    while (Ready.load() != NumThreads)
      ;
    Go.store(true, std::memory_order_release);
    for (std::thread &T : Threads)
      T.join();

    EXPECT_EQ(Failures.load(), 0u);
    EXPECT_EQ(S.cache().stats().Insertions, 1u) << "round " << Round;
    EXPECT_EQ(Compiles.value() - Before, 1u) << "round " << Round;
  }
}

TEST(CompileService, ConcurrentEvictionChurnIsSafe) {
  ServiceConfig Cfg;
  Cfg.Shards = 2;
  Cfg.MaxCodeBytes = 512; // Constant eviction pressure.
  CompileService S(Cfg);
  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < 100; ++I) {
        unsigned E = 2 + (T * 31 + I) % 24;
        apps::PowerApp P(E);
        FnHandle H = P.specializeCached(S);
        // Execute while other threads evict: the handle must pin the code.
        if (H->as<int(int)>()(1) != 1)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GT(S.cache().stats().Evictions, 0u);
}

} // namespace
