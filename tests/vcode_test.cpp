//===- tests/vcode_test.cpp - VCODE abstract machine tests ----------------===//
//
// Exercises the one-pass back end: every operation, spill handling under
// register pressure, control flow, calls, and the strength-reduction paths.
//
//===----------------------------------------------------------------------===//

#include "vcode/VCode.h"

#include "support/CodeBuffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

using namespace tcc;
using namespace tcc::vcode;

namespace {

/// Helper that owns a code region and runs an emission callback.
class Jit {
public:
  explicit Jit(std::size_t Cap = 1 << 16)
      : Region(Cap, CodePlacement::Sequential), V(Region.base(), Cap) {}

  template <typename FnT> FnT *finish() {
    void *Entry = V.finish();
    Region.makeExecutable();
    return reinterpret_cast<FnT *>(Entry);
  }

  CodeRegion Region;
  VCode V;
};

/// Builds int fn(int,int) { return <op>(a, b); } via the given emitter.
int runBinI(const std::function<void(VCode &, Reg, Reg, Reg)> &Op, int A,
            int B) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg Ra = V.getreg(), Rb = V.getreg();
  V.bindArgI(0, Ra);
  V.bindArgI(1, Rb);
  Reg Rd = V.getreg();
  Op(V, Rd, Ra, Rb);
  V.retI(Rd);
  return J.finish<int(int, int)>()(A, B);
}

struct BinCase {
  const char *Name;
  void (VCode::*Emit)(Reg, Reg, Reg);
  int (*Ref)(int, int);
};

const BinCase BinCases[] = {
    {"add", &VCode::addI, [](int A, int B) { return A + B; }},
    {"sub", &VCode::subI, [](int A, int B) { return A - B; }},
    {"mul", &VCode::mulI, [](int A, int B) { return A * B; }},
    {"and", &VCode::andI, [](int A, int B) { return A & B; }},
    {"or", &VCode::orI, [](int A, int B) { return A | B; }},
    {"xor", &VCode::xorI, [](int A, int B) { return A ^ B; }},
};

class VCodeBinOp : public ::testing::TestWithParam<BinCase> {};

TEST_P(VCodeBinOp, MatchesReference) {
  const BinCase &C = GetParam();
  const int Values[] = {0, 1, -1, 7, -13, 1000000, -45, 2147480000};
  for (int A : Values)
    for (int B : Values) {
      int Got = runBinI(
          [&](VCode &V, Reg D, Reg X, Reg Y) { (V.*C.Emit)(D, X, Y); }, A, B);
      EXPECT_EQ(Got, C.Ref(A, B)) << C.Name << "(" << A << ", " << B << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(AllOps, VCodeBinOp, ::testing::ValuesIn(BinCases),
                         [](const auto &Info) { return Info.param.Name; });

TEST(VCodeArith, DivMod) {
  const int As[] = {0, 1, -1, 42, -42, 100000, -99999};
  const int Bs[] = {1, -1, 2, -2, 7, -7, 4096};
  for (int A : As)
    for (int B : Bs) {
      EXPECT_EQ(runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.divI(D, X, Y); },
                        A, B),
                A / B)
          << A << " / " << B;
      EXPECT_EQ(runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.modI(D, X, Y); },
                        A, B),
                A % B)
          << A << " % " << B;
    }
}

TEST(VCodeArith, UnsignedDivMod) {
  EXPECT_EQ(runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.divUI(D, X, Y); },
                    -2, 3),
            static_cast<int>(0xFFFFFFFEu / 3));
  EXPECT_EQ(runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.modUI(D, X, Y); },
                    -2, 3),
            static_cast<int>(0xFFFFFFFEu % 3));
}

TEST(VCodeArith, Shifts) {
  for (int A : {1, -1, 0x40000000, -256, 12345})
    for (int B : {0, 1, 4, 31}) {
      EXPECT_EQ(runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.shlI(D, X, Y); },
                        A, B),
                A << B);
      EXPECT_EQ(runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.shrI(D, X, Y); },
                        A, B),
                A >> B);
      EXPECT_EQ(
          runBinI([](VCode &V, Reg D, Reg X, Reg Y) { V.ushrI(D, X, Y); }, A,
                  B),
          static_cast<int>(static_cast<unsigned>(A) >> B));
    }
}

TEST(VCodeArith, AliasedOperands) {
  // d == a, d == b, and d == a == b must all be handled by the two-operand
  // conversion logic.
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg A = V.getreg(), B = V.getreg();
  V.bindArgI(0, A);
  V.bindArgI(1, B);
  V.subI(A, A, B); // a = a - b
  V.subI(B, A, B); // b = (a-b) - b
  V.addI(B, B, B); // b *= 2
  V.retI(B);
  auto *Fn = J.finish<int(int, int)>();
  EXPECT_EQ(Fn(10, 3), ((10 - 3) - 3) * 2);
}

TEST(VCodeArith, NegNot) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg A = V.getreg();
  V.bindArgI(0, A);
  Reg B = V.getreg();
  V.negI(B, A);
  Reg C = V.getreg();
  V.notI(C, B);
  Reg D = V.getreg();
  V.addI(D, B, C);
  V.retI(D); // -a + ~(-a) == -1 always
  auto *Fn = J.finish<int(int)>();
  EXPECT_EQ(Fn(5), -1);
  EXPECT_EQ(Fn(-100), -1);
}

// --- Immediate forms ---------------------------------------------------------

int runUnaryImm(const std::function<void(VCode &, Reg, Reg)> &Op, int A) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg Ra = V.getreg();
  V.bindArgI(0, Ra);
  Reg Rd = V.getreg();
  Op(V, Rd, Ra);
  V.retI(Rd);
  return J.finish<int(int)>()(A);
}

TEST(VCodeImm, MulStrengthReduction) {
  // Sweep multiplier shapes: zero, one, powers of two, two-bit values,
  // general values, negatives — all strength-reduction paths (paper §4.4).
  const int Multipliers[] = {0,  1,  -1, 2,   4,   8,    1024, 3,
                             5,  6,  9,  12,  160, 7,    11,   100,
                             -2, -8, -3, -12, -7,  12345};
  const int Values[] = {0, 1, -1, 3, -17, 100, 4096, -30000, 111111};
  for (int M : Multipliers)
    for (int A : Values) {
      int Got = runUnaryImm(
          [&](VCode &V, Reg D, Reg S) { V.mulII(D, S, M); }, A);
      EXPECT_EQ(Got, A * M) << A << " * " << M;
    }
}

TEST(VCodeImm, DivStrengthReduction) {
  const int Divisors[] = {1,  -1, 2,  4,   8,    1024, 3,    7,
                          -3, -4, -7, 100, 641, 999983, -1000, 2147483647};
  const int Values[] = {0, 1, -1, 3, -17, 100, 4097, -30001, 111111, -7};
  for (int M : Divisors)
    for (int A : Values) {
      int Got = runUnaryImm(
          [&](VCode &V, Reg D, Reg S) { V.divII(D, S, M); }, A);
      EXPECT_EQ(Got, A / M) << A << " / " << M << " (C truncation)";
      int GotMod = runUnaryImm(
          [&](VCode &V, Reg D, Reg S) { V.modII(D, S, M); }, A);
      EXPECT_EQ(GotMod, A % M) << A << " % " << M;
    }
}

TEST(VCodeImm, AddSubAndOrXor) {
  for (int Imm : {0, 1, -1, 127, 128, -129, 100000})
    for (int A : {0, 5, -6, 1 << 30}) {
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.addII(D, S, Imm); }, A),
                A + Imm);
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.subII(D, S, Imm); }, A),
                A - Imm);
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.andII(D, S, Imm); }, A),
                A & Imm);
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.orII(D, S, Imm); }, A),
                A | Imm);
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.xorII(D, S, Imm); }, A),
                A ^ Imm);
    }
}

TEST(VCodeImm, ShiftImmediates) {
  for (std::uint8_t Imm : {0, 1, 5, 31})
    for (int A : {1, -1, 12345, -99}) {
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.shlII(D, S, Imm); }, A),
                A << Imm);
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.shrII(D, S, Imm); }, A),
                A >> Imm);
      EXPECT_EQ(runUnaryImm(
                    [&](VCode &V, Reg D, Reg S) { V.ushrII(D, S, Imm); }, A),
                static_cast<int>(static_cast<unsigned>(A) >> Imm));
    }
}

// --- Spill behaviour -----------------------------------------------------------

TEST(VCodeSpill, PressurePastPoolSpills) {
  // Materialize 2*pool values, then sum them; getreg must hand out negative
  // designators past the pool and all operations must still be correct.
  Jit J;
  VCode &V = J.V;
  V.enter();
  constexpr int N = 2 * VCode::NumIntPool + 3;
  std::vector<Reg> Regs;
  bool SawSpill = false;
  for (int I = 0; I < N; ++I) {
    Reg R = V.getreg();
    SawSpill |= VCode::isSpill(R);
    V.setI(R, (I + 1) * 10);
    Regs.push_back(R);
  }
  EXPECT_TRUE(SawSpill) << "pool should have been exhausted";
  Reg Sum = Regs[0];
  for (int I = 1; I < N; ++I)
    V.addI(Sum, Sum, Regs[I]);
  V.retI(Sum);
  auto *Fn = J.finish<int()>();
  EXPECT_EQ(Fn(), 10 * N * (N + 1) / 2);
}

TEST(VCodeSpill, PutregRecyclesSlots) {
  Jit J;
  VCode &V = J.V;
  for (int I = 0; I < VCode::NumIntPool; ++I)
    (void)V.getreg();
  Reg S1 = V.getreg();
  ASSERT_TRUE(VCode::isSpill(S1));
  V.putreg(S1);
  Reg S2 = V.getreg();
  EXPECT_EQ(S1, S2) << "freed spill slot should be reused";
}

TEST(VCodeSpill, StaticRegsAreSeparate) {
  Reg S0 = VCode::staticReg(0);
  Reg S1 = VCode::staticReg(1);
  EXPECT_NE(S0, S1);
  EXPECT_FALSE(VCode::isSpill(S0));
  // Static registers can be used as ordinary operands.
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg A = V.getreg();
  V.bindArgI(0, A);
  V.setI(S0, 100);
  V.addI(S1, S0, A);
  V.retI(S1);
  auto *Fn = J.finish<int(int)>();
  EXPECT_EQ(Fn(11), 111);
}

// --- Control flow -----------------------------------------------------------------

TEST(VCodeFlow, LoopSum) {
  // for (i = 0, s = 0; i < n; i++) s += i; return s;
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg N = V.getreg();
  V.bindArgI(0, N);
  Reg I = V.getreg(), S = V.getreg();
  V.setI(I, 0);
  V.setI(S, 0);
  Label Head = V.newLabel(), Done = V.newLabel();
  V.bindLabel(Head);
  V.brCmpI(CmpKind::GeS, I, N, Done);
  V.addI(S, S, I);
  V.addII(I, I, 1);
  V.jump(Head);
  V.bindLabel(Done);
  V.retI(S);
  auto *Fn = J.finish<int(int)>();
  EXPECT_EQ(Fn(0), 0);
  EXPECT_EQ(Fn(1), 0);
  EXPECT_EQ(Fn(10), 45);
  EXPECT_EQ(Fn(1000), 499500);
}

TEST(VCodeFlow, BackwardAndForwardBranches) {
  // if (a == b) return 7; return 8;
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg A = V.getreg(), B = V.getreg();
  V.bindArgI(0, A);
  V.bindArgI(1, B);
  Label Eq = V.newLabel();
  V.brCmpI(CmpKind::Eq, A, B, Eq);
  Reg R = V.getreg();
  V.setI(R, 8);
  V.retI(R);
  V.bindLabel(Eq);
  V.setI(R, 7);
  V.retI(R);
  auto *Fn = J.finish<int(int, int)>();
  EXPECT_EQ(Fn(3, 3), 7);
  EXPECT_EQ(Fn(3, 4), 8);
}

class VCodeCmp : public ::testing::TestWithParam<CmpKind> {};

TEST_P(VCodeCmp, SetMatchesReference) {
  CmpKind K = GetParam();
  auto Ref = [K](int A, int B) -> int {
    auto UA = static_cast<unsigned>(A), UB = static_cast<unsigned>(B);
    switch (K) {
    case CmpKind::Eq:
      return A == B;
    case CmpKind::Ne:
      return A != B;
    case CmpKind::LtS:
      return A < B;
    case CmpKind::LeS:
      return A <= B;
    case CmpKind::GtS:
      return A > B;
    case CmpKind::GeS:
      return A >= B;
    case CmpKind::LtU:
      return UA < UB;
    case CmpKind::LeU:
      return UA <= UB;
    case CmpKind::GtU:
      return UA > UB;
    case CmpKind::GeU:
      return UA >= UB;
    }
    return -1;
  };
  for (int A : {0, 1, -1, 100, -100})
    for (int B : {0, 1, -1, 100, -100}) {
      int Got = runBinI(
          [&](VCode &V, Reg D, Reg X, Reg Y) { V.cmpSetI(K, D, X, Y); }, A, B);
      EXPECT_EQ(Got, Ref(A, B))
          << "cmp kind " << static_cast<int>(K) << " on " << A << "," << B;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, VCodeCmp,
    ::testing::Values(CmpKind::Eq, CmpKind::Ne, CmpKind::LtS, CmpKind::LeS,
                      CmpKind::GtS, CmpKind::GeS, CmpKind::LtU, CmpKind::LeU,
                      CmpKind::GtU, CmpKind::GeU));

TEST(VCodeCmpHelpers, NegateAndSwapAgree) {
  for (int KInt = 0; KInt <= static_cast<int>(CmpKind::GeU); ++KInt) {
    auto K = static_cast<CmpKind>(KInt);
    for (int A : {0, 1, -5, 7})
      for (int B : {0, 1, -5, 7}) {
        int Plain = runBinI(
            [&](VCode &V, Reg D, Reg X, Reg Y) { V.cmpSetI(K, D, X, Y); }, A,
            B);
        int Neg = runBinI(
            [&](VCode &V, Reg D, Reg X, Reg Y) {
              V.cmpSetI(negate(K), D, X, Y);
            },
            A, B);
        EXPECT_EQ(Plain, 1 - Neg);
        int Swapped = runBinI(
            [&](VCode &V, Reg D, Reg X, Reg Y) {
              V.cmpSetI(swapOperands(K), D, X, Y);
            },
            B, A);
        EXPECT_EQ(Plain, Swapped);
      }
  }
}

// --- Memory -----------------------------------------------------------------------

TEST(VCodeMem, LoadStoreWidths) {
  struct Mixed {
    std::int8_t B;
    std::uint8_t UB;
    std::int16_t H;
    std::uint16_t UH;
    std::int32_t W;
    std::int64_t L;
  };
  Mixed M = {-5, 200, -1000, 50000, -123456, -5000000000ll};

  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg P = V.getreg();
  V.bindArgI(0, P);
  Reg Acc = V.getreg(), T = V.getreg();
  V.ldI8s(Acc, P, offsetof(Mixed, B));
  V.ldI8u(T, P, offsetof(Mixed, UB));
  V.addI(Acc, Acc, T);
  V.ldI16s(T, P, offsetof(Mixed, H));
  V.addI(Acc, Acc, T);
  V.ldI16u(T, P, offsetof(Mixed, UH));
  V.addI(Acc, Acc, T);
  V.ldI(T, P, offsetof(Mixed, W));
  V.addI(Acc, Acc, T);
  V.retI(Acc);
  auto *Fn = J.finish<int(Mixed *)>();
  EXPECT_EQ(Fn(&M), -5 + 200 - 1000 + 50000 - 123456);
}

TEST(VCodeMem, StoreWidths) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg P = V.getreg();
  V.bindArgI(0, P);
  Reg T = V.getreg();
  V.setI(T, 0x11223344);
  V.stI8(P, 0, T);
  V.stI16(P, 2, T);
  V.stI(P, 4, T);
  V.setL(T, 0x0102030405060708ll);
  V.stL(P, 8, T);
  V.retVoid();
  auto *Fn = J.finish<void(std::uint8_t *)>();
  std::uint8_t Buf[16] = {0};
  Fn(Buf);
  EXPECT_EQ(Buf[0], 0x44);
  EXPECT_EQ(Buf[2], 0x44);
  EXPECT_EQ(Buf[3], 0x33);
  std::uint32_t W;
  std::memcpy(&W, Buf + 4, 4);
  EXPECT_EQ(W, 0x11223344u);
  std::uint64_t L;
  std::memcpy(&L, Buf + 8, 8);
  EXPECT_EQ(L, 0x0102030405060708ull);
}

TEST(VCodeMem, PointerIndexing) {
  // return p[i] for int* p — exercises sextIToL / shlLI / addL.
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg P = V.getreg(), I = V.getreg();
  V.bindArgI(0, P);
  V.bindArgI(1, I);
  Reg Addr = V.getreg();
  V.sextIToL(Addr, I);
  V.shlLI(Addr, Addr, 2);
  V.addL(Addr, P, Addr);
  Reg D = V.getreg();
  V.ldI(D, Addr, 0);
  V.retI(D);
  auto *Fn = J.finish<int(const int *, int)>();
  int Arr[] = {10, 20, 30, 40};
  EXPECT_EQ(Fn(Arr, 0), 10);
  EXPECT_EQ(Fn(Arr, 3), 40);
}

// --- Doubles -------------------------------------------------------------------------

TEST(VCodeDouble, Arithmetic) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  FReg A = V.getfreg(), B = V.getfreg();
  V.bindArgD(0, A);
  V.bindArgD(1, B);
  FReg T = V.getfreg();
  V.mulD(T, A, B);
  V.addD(T, T, A);
  V.divD(T, T, B);
  V.retD(T);
  auto *Fn = J.finish<double(double, double)>();
  EXPECT_DOUBLE_EQ(Fn(3.0, 4.0), (3.0 * 4.0 + 3.0) / 4.0);
}

TEST(VCodeDouble, NegAndConst) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  FReg A = V.getfreg();
  V.bindArgD(0, A);
  FReg C = V.getfreg();
  V.setD(C, 2.5);
  FReg N = V.getfreg();
  V.negD(N, A);
  V.mulD(N, N, C);
  V.retD(N);
  auto *Fn = J.finish<double(double)>();
  EXPECT_DOUBLE_EQ(Fn(4.0), -10.0);
}

TEST(VCodeDouble, Conversions) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg I = V.getreg();
  V.bindArgI(0, I);
  FReg D = V.getfreg();
  V.cvtIToD(D, I);
  FReg H = V.getfreg();
  V.setD(H, 0.5);
  V.mulD(D, D, H);
  Reg R = V.getreg();
  V.cvtDToI(R, D);
  V.retI(R);
  auto *Fn = J.finish<int(int)>();
  EXPECT_EQ(Fn(9), 4);
  EXPECT_EQ(Fn(-9), -4);
}

TEST(VCodeDouble, CompareAndBranch) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  FReg A = V.getfreg(), B = V.getfreg();
  V.bindArgD(0, A);
  V.bindArgD(1, B);
  Label Lt = V.newLabel();
  V.brCmpD(CmpKind::LtS, A, B, Lt);
  Reg R = V.getreg();
  V.setI(R, 0);
  V.retI(R);
  V.bindLabel(Lt);
  V.setI(R, 1);
  V.retI(R);
  auto *Fn = J.finish<int(double, double)>();
  EXPECT_EQ(Fn(1.0, 2.0), 1);
  EXPECT_EQ(Fn(2.0, 1.0), 0);
  EXPECT_EQ(Fn(1.0, 1.0), 0);
}

TEST(VCodeDouble, SpilledDoubles) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  constexpr int N = VCode::NumFloatPool + 4;
  std::vector<FReg> Regs;
  for (int I = 0; I < N; ++I) {
    FReg R = V.getfreg();
    V.setD(R, I + 0.5);
    Regs.push_back(R);
  }
  EXPECT_TRUE(VCode::isSpill(Regs.back()));
  FReg Sum = Regs[0];
  for (int I = 1; I < N; ++I)
    V.addD(Sum, Sum, Regs[I]);
  V.retD(Sum);
  auto *Fn = J.finish<double()>();
  double Want = 0;
  for (int I = 0; I < N; ++I)
    Want += I + 0.5;
  EXPECT_DOUBLE_EQ(Fn(), Want);
}

// --- Calls ------------------------------------------------------------------------------

static int GlobalHits = 0;
int observe3(int A, int B, int C) {
  ++GlobalHits;
  return A * 100 + B * 10 + C;
}

TEST(VCodeCall, DirectCall) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg A = V.getreg();
  V.bindArgI(0, A);
  Reg B = V.getreg();
  V.setI(B, 7);
  V.prepareCallArgI(0, A);
  V.prepareCallArgI(1, B);
  V.prepareCallArgII(2, 9);
  V.emitCall(reinterpret_cast<const void *>(&observe3));
  Reg R = V.getreg();
  V.resultToI(R);
  V.addI(R, R, B); // callee-saved pool value survives the call
  V.retI(R);
  auto *Fn = J.finish<int(int)>();
  GlobalHits = 0;
  EXPECT_EQ(Fn(3), 379 + 7);
  EXPECT_EQ(GlobalHits, 1);
}

TEST(VCodeCall, IndirectCall) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg FnPtr = V.getreg(), X = V.getreg();
  V.bindArgI(0, FnPtr);
  V.bindArgI(1, X);
  V.prepareCallArgI(0, X);
  V.prepareCallArgII(1, 2);
  V.prepareCallArgII(2, 1);
  V.emitCallIndirect(FnPtr);
  Reg R = V.getreg();
  V.resultToI(R);
  V.retI(R);
  auto *Fn = J.finish<int(int (*)(int, int, int), int)>();
  EXPECT_EQ(Fn(&observe3, 5), 521);
}

TEST(VCodeCall, VariadicCallee) {
  // snprintf through the variadic path: AL must carry the FP arg count.
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg Buf = V.getreg();
  V.bindArgI(0, Buf);
  V.prepareCallArgI(0, Buf);
  V.prepareCallArgII(1, 32);
  static const char Fmt[] = "%d-%d";
  V.prepareCallArgP(2, Fmt);
  V.prepareCallArgII(3, 12);
  V.prepareCallArgII(4, 34);
  V.emitCall(reinterpret_cast<const void *>(&snprintf));
  V.retVoid();
  auto *Fn = J.finish<void(char *)>();
  char Out[32] = {0};
  Fn(Out);
  EXPECT_STREQ(Out, "12-34");
}

// --- Statistics / misc -----------------------------------------------------------------

TEST(VCodeStats, InstructionCountGrows) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  unsigned AfterProlog = V.instructionsEmitted();
  EXPECT_GT(AfterProlog, 0u);
  Reg R = V.getreg();
  V.setI(R, 1);
  EXPECT_GT(V.instructionsEmitted(), AfterProlog);
  V.retI(R);
  auto *Fn = J.finish<int()>();
  EXPECT_EQ(Fn(), 1);
  EXPECT_GT(V.codeBytes(), 0u);
}

TEST(VCodeStats, Longs) {
  Jit J;
  VCode &V = J.V;
  V.enter();
  Reg A = V.getreg(), B = V.getreg();
  V.bindArgI(0, A);
  V.bindArgI(1, B);
  Reg T = V.getreg();
  V.mulL(T, A, B);
  V.addLI(T, T, 5);
  V.retL(T);
  auto *Fn = J.finish<std::int64_t(std::int64_t, std::int64_t)>();
  EXPECT_EQ(Fn(3000000000ll, 4), 12000000005ll);
}

} // namespace
