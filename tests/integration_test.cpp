//===- tests/integration_test.cpp - Cross-module integration tests --------===//
//
// End-to-end flows that span modules: the shipped .tc example programs,
// BitVector (the liveness substrate), unchecked-getreg mode, the public
// ternary, and interactions that only appear when everything is wired
// together.
//
//===----------------------------------------------------------------------===//

#include "core/Compile.h"
#include "frontend/Interp.h"
#include "frontend/Parser.h"
#include "support/BitVector.h"
#include "support/CodeBuffer.h"
#include "vcode/VCode.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace tcc;
using namespace tcc::core;

namespace {

// --- BitVector (liveness substrate) ------------------------------------------

TEST(BitVectorTest, SetTestClear) {
  BitVector B(130);
  B.set(0);
  B.set(63);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.test(0));
  EXPECT_TRUE(B.test(63));
  EXPECT_TRUE(B.test(64));
  EXPECT_TRUE(B.test(129));
  EXPECT_FALSE(B.test(1));
  EXPECT_EQ(B.count(), 4u);
  B.clear(64);
  EXPECT_FALSE(B.test(64));
  EXPECT_EQ(B.count(), 3u);
}

TEST(BitVectorTest, UnionReportsChange) {
  BitVector A(100), B(100);
  B.set(42);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)) << "second union changes nothing";
  EXPECT_TRUE(A.test(42));
}

TEST(BitVectorTest, UnionWithMinusIsDataflowStep) {
  // LiveIn |= LiveOut - Def.
  BitVector LiveIn(10), LiveOut(10), Def(10);
  LiveOut.set(1);
  LiveOut.set(2);
  Def.set(2);
  EXPECT_TRUE(LiveIn.unionWithMinus(LiveOut, Def));
  EXPECT_TRUE(LiveIn.test(1));
  EXPECT_FALSE(LiveIn.test(2)) << "defined values are not live-in";
}

TEST(BitVectorTest, ForEachVisitsInOrder) {
  BitVector B(200);
  std::set<unsigned> Want = {3, 64, 65, 127, 128, 199};
  for (unsigned I : Want)
    B.set(I);
  std::vector<unsigned> Got;
  B.forEach([&](unsigned I) { Got.push_back(I); });
  EXPECT_TRUE(std::is_sorted(Got.begin(), Got.end()));
  EXPECT_EQ(std::set<unsigned>(Got.begin(), Got.end()), Want);
}

TEST(BitVectorTest, RandomizedAgainstSet) {
  std::mt19937 Rng(3);
  BitVector B(512);
  std::set<unsigned> Ref;
  for (int I = 0; I < 2000; ++I) {
    unsigned Bit = Rng() % 512;
    if (Rng() % 3 == 0) {
      B.clear(Bit);
      Ref.erase(Bit);
    } else {
      B.set(Bit);
      Ref.insert(Bit);
    }
  }
  EXPECT_EQ(B.count(), Ref.size());
  for (unsigned I = 0; I < 512; ++I)
    EXPECT_EQ(B.test(I), Ref.count(I) > 0) << "bit " << I;
}

// --- VCode unchecked-getreg mode (paper §5.1 fast path) --------------------------

TEST(VCodeModes, UncheckedModeWorksWithinPool) {
  CodeRegion Region(1 << 14, CodePlacement::Sequential);
  vcode::VCode V(Region.base(), Region.capacity());
  V.setSpillingEnabled(false);
  V.enter();
  vcode::Reg A = V.getreg(), B = V.getreg();
  V.bindArgI(0, A);
  V.bindArgI(1, B);
  V.mulI(A, A, B);
  V.retI(A);
  V.finish();
  Region.makeExecutable();
  EXPECT_EQ(reinterpret_cast<int (*)(int, int)>(Region.base())(6, 7), 42);
}

TEST(VCodeModes, UncheckedModeAbortsOnExhaustion) {
  EXPECT_DEATH(
      {
        CodeRegion Region(1 << 14, CodePlacement::Sequential);
        vcode::VCode V(Region.base(), Region.capacity());
        V.setSpillingEnabled(false);
        for (int I = 0; I <= vcode::VCode::NumIntPool; ++I)
          (void)V.getreg();
      },
      "register pool exhausted");
}

TEST(VCodeModes, MagicConstantsMatchDivision) {
  std::mt19937 Rng(17);
  for (int T = 0; T < 500; ++T) {
    auto D = static_cast<std::int32_t>(Rng());
    if (D == 0 || D == INT32_MIN || D == 1 || D == -1)
      continue;
    auto [Magic, Shift] = vcode::VCode::signedDivisionMagic(D);
    // Validate on random dividends via the reference recipe.
    for (int K = 0; K < 20; ++K) {
      auto N = static_cast<std::int32_t>(Rng());
      std::int64_t Prod = static_cast<std::int64_t>(Magic) * N;
      auto Q = static_cast<std::int32_t>(Prod >> 32);
      if (Magic < 0 && D > 0)
        Q += N;
      if (Magic > 0 && D < 0)
        Q -= N;
      Q >>= Shift;
      Q += static_cast<std::uint32_t>(Q) >> 31;
      EXPECT_EQ(Q, N / D) << N << " / " << D;
    }
  }
}

// --- Public ternary -------------------------------------------------------------

class CondBothBackends : public ::testing::TestWithParam<BackendKind> {};

INSTANTIATE_TEST_SUITE_P(Backends, CondBothBackends,
                         ::testing::Values(BackendKind::VCode,
                                           BackendKind::ICode));

TEST_P(CondBothBackends, TernaryExpression) {
  Context C;
  VSpec A = C.paramInt(0), B = C.paramInt(1);
  // max(a, b) via ?:.
  Expr M = C.cond(Expr(A) > Expr(B), Expr(A), Expr(B));
  CompileOptions O;
  O.Backend = GetParam();
  CompiledFn F = compileFn(C, C.ret(M), EvalType::Int, O);
  auto *Fn = F.as<int(int, int)>();
  EXPECT_EQ(Fn(3, 9), 9);
  EXPECT_EQ(Fn(9, 3), 9);
  EXPECT_EQ(Fn(-5, -7), -5);
}

TEST_P(CondBothBackends, TernaryDouble) {
  Context C;
  VSpec X = C.paramDouble(0);
  Expr Abs = C.cond(Expr(X) < C.doubleConst(0.0), C.neg(Expr(X)), Expr(X));
  CompileOptions O;
  O.Backend = GetParam();
  CompiledFn F = compileFn(C, C.ret(Abs), EvalType::Double, O);
  auto *Fn = F.as<double(double)>();
  EXPECT_DOUBLE_EQ(Fn(-2.5), 2.5);
  EXPECT_DOUBLE_EQ(Fn(2.5), 2.5);
}

// --- The shipped .tc examples run end to end ---------------------------------------

std::string exampleSource(const char *Name) {
  std::string Path = std::string(TICKC_EXAMPLES_DIR) + "/" + Name;
  FILE *F = fopen(Path.c_str(), "rb");
  if (!F)
    return {};
  std::string S;
  char Buf[4096];
  std::size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  fclose(F);
  return S;
}

TEST(TcExamples, Hello) {
  std::string Src = exampleSource("hello.tc");
  ASSERT_FALSE(Src.empty());
  auto [Code, Out] = frontend::runTickC(Src);
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "hello world\n");
}

TEST(TcExamples, DotProd) {
  std::string Src = exampleSource("dotprod.tc");
  ASSERT_FALSE(Src.empty());
  auto [Code, Out] = frontend::runTickC(Src);
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "dot = 57\n");
}

TEST(TcExamples, Power) {
  std::string Src = exampleSource("power.tc");
  ASSERT_FALSE(Src.empty());
  for (BackendKind B : {BackendKind::VCode, BackendKind::ICode}) {
    auto [Code, Out] = frontend::runTickC(Src, B);
    EXPECT_EQ(Code, 0);
    EXPECT_EQ(Out, "2^13 = 8192, 3^13 = 1594323\n");
  }
}

// --- Failure injection ----------------------------------------------------------------

TEST(FailureModes, UnboundLabelAsserts) {
#ifndef NDEBUG
  EXPECT_DEATH(
      {
        CodeRegion Region(1 << 14, CodePlacement::Sequential);
        vcode::VCode V(Region.base(), Region.capacity());
        V.enter();
        vcode::Label L = V.newLabel();
        V.jump(L); // never bound
        V.finish();
      },
      "unbound label");
#endif
}

TEST(FailureModes, RtEvalOfNonConstantAborts) {
  EXPECT_DEATH(
      {
        Context C;
        VSpec P = C.paramInt(0);
        // $ of a parameter cannot be evaluated at instantiation time.
        Expr Bad = C.rtEval(Expr(P) + C.intConst(1));
        compileFn(C, C.ret(Bad), EvalType::Int);
      },
      "not a run-time constant");
}

} // namespace
