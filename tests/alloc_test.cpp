//===- tests/alloc_test.cpp - Zero-allocation compile fast path -----------==//
//
// Counts heap allocations by overriding the global operator new in this
// test binary. The contract under test: once a CompileContext (and the
// region pool) are warm, repeat ICODE compiles of the same spec perform
// ZERO heap allocations — everything transient lives in the context's
// arena, which retains its slab across reset().
//
// Also stresses CompileContextPool reuse from 8 threads; CI runs this
// binary under TSan.
//
//===----------------------------------------------------------------------===//

#include "cache/CompileService.h"
#include "core/Compile.h"
#include "core/CompileContext.h"
#include "core/Context.h"
#include "observability/Metrics.h"
#include "observability/Names.h"
#include "support/CodeBuffer.h"
#include "verify/Verify.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

// --- Global allocation counter ----------------------------------------------
// Every path into the heap in this binary funnels through these operators;
// the tests read the counter around compile calls. (The arena's slab
// allocation uses std::malloc and is accounted separately by
// Arena::systemAllocs / the compile.allocs metric, which the tests also
// check — between the two counters the whole heap surface is covered.)

static std::atomic<std::uint64_t> GHeapAllocs{0};

static void *countedAlloc(std::size_t Sz, std::size_t Align) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  void *P = Align > alignof(std::max_align_t)
                ? std::aligned_alloc(Align, (Sz + Align - 1) / Align * Align)
                : std::malloc(Sz ? Sz : 1);
  if (!P)
    throw std::bad_alloc();
  return P;
}

void *operator new(std::size_t Sz) { return countedAlloc(Sz, 0); }
void *operator new[](std::size_t Sz) { return countedAlloc(Sz, 0); }
void *operator new(std::size_t Sz, std::align_val_t Al) {
  return countedAlloc(Sz, static_cast<std::size_t>(Al));
}
void *operator new[](std::size_t Sz, std::align_val_t Al) {
  return countedAlloc(Sz, static_cast<std::size_t>(Al));
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}

using namespace tcc;
using namespace tcc::core;

namespace {

/// The pow benchmark's square-and-multiply chain (apps/Power.cpp's shape),
/// built once so repeat compiles exercise only the compile path.
Stmt buildPowerSpec(Context &C, unsigned Exponent) {
  VSpec X = C.paramInt(0);
  VSpec Base = C.localInt();
  VSpec Acc = C.localInt();
  std::vector<Stmt> Steps;
  Steps.push_back(C.assign(Base, Expr(X)));
  bool HaveAcc = false;
  unsigned E = Exponent;
  while (E) {
    if (E & 1) {
      Steps.push_back(
          C.assign(Acc, HaveAcc ? Expr(Acc) * Expr(Base) : Expr(Base)));
      HaveAcc = true;
    }
    E >>= 1;
    if (E)
      Steps.push_back(C.assign(Base, Expr(Base) * Expr(Base)));
  }
  if (!HaveAcc)
    Steps.push_back(C.assign(Acc, C.intConst(1)));
  Steps.push_back(C.ret(Acc));
  return C.block(Steps);
}

/// The hash benchmark's specialized-lookup shape (apps/Hash.cpp): probes a
/// run-time-constant table with a loop — branches, labels, memory ops.
Stmt buildHashSpec(Context &C, const int *KeysData, const int *ValsData,
                   unsigned Size) {
  VSpec Key = C.paramInt(0);
  VSpec H = C.localInt();
  VSpec Probe = C.localInt();
  Expr KeysBase = C.rcPtr(KeysData);
  Expr ValsBase = C.rcPtr(ValsData);
  auto SizeC = [&] { return C.rcInt(static_cast<int>(Size)); };
  Stmt Init = C.assign(H, (Expr(Key) * C.rcInt(31)) % SizeC());
  Expr KeyAtH = C.index(KeysBase, Expr(H), MemType::I32);
  Expr Continue = (KeyAtH != C.rcInt(-1)) && (KeyAtH != Expr(Key));
  Stmt Loop = C.whileStmt(Continue,
                          C.assign(H, (Expr(H) + C.intConst(1)) % SizeC()));
  Stmt Tail = C.block({
      C.assign(Probe, C.index(KeysBase, Expr(H), MemType::I32)),
      C.ifStmt(Expr(Probe) == Expr(Key),
               C.ret(C.index(ValsBase, Expr(H), MemType::I32)),
               C.ret(C.intConst(-1))),
  });
  return C.block({Init, Loop, Tail});
}

/// Compiles \p Body repeatedly through one warmed CompileContext + region
/// pool and returns the heap allocations the steady-state compiles cost.
std::uint64_t steadyStateAllocs(Context &Ctx, Stmt Body, unsigned Reps) {
  RegionPool Pool;
  CompileContext CC;
  CompileOptions Opts;
  Opts.Backend = BackendKind::ICode;
  Opts.Pool = &Pool;
  Opts.Ctx = &CC;

  // Warm up: first compiles grow the arena, the region pool's mapping, the
  // metrics registry entries, and function-local statics.
  for (int W = 0; W < 3; ++W) {
    CompiledFn F = compileFn(Ctx, Body, EvalType::Int, Opts);
    EXPECT_TRUE(F.valid());
  } // F destroyed here: its region returns to the pool before the next
    // acquire, so the pool stays at one region.

  obs::Counter &Allocs =
      obs::MetricsRegistry::global().counter(obs::names::CompileAllocs);
  std::uint64_t ArenaAllocsBefore = Allocs.value();
  std::uint64_t HeapBefore = GHeapAllocs.load(std::memory_order_relaxed);
  int Calls = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    CompiledFn F = compileFn(Ctx, Body, EvalType::Int, Opts);
    Calls += F.as<int(int)>()(3) != 0;
  }
  std::uint64_t HeapAfter = GHeapAllocs.load(std::memory_order_relaxed);
  EXPECT_EQ(Calls, static_cast<int>(Reps));
  EXPECT_EQ(Allocs.value(), ArenaAllocsBefore)
      << "arena grew during steady-state compiles";
  return HeapAfter - HeapBefore;
}

} // namespace

TEST(AllocTest, PowerSteadyStateCompileIsAllocationFree) {
  // The allocation-freedom guarantee is about the compile pipeline itself;
  // the optional verify checkers are diagnostic tooling and build their
  // reports/worklists on the heap by design.
  if (verify::envEnabled())
    GTEST_SKIP() << "TICKC_VERIFY is set; checkers allocate by design";
  Context C;
  Stmt Body = buildPowerSpec(C, 13);
  EXPECT_EQ(steadyStateAllocs(C, Body, 10), 0u);
}

TEST(AllocTest, HashSteadyStateCompileIsAllocationFree) {
  if (verify::envEnabled())
    GTEST_SKIP() << "TICKC_VERIFY is set; checkers allocate by design";
  std::vector<int> Keys(16, -1), Vals(16, 0);
  Keys[5] = 37;
  Vals[5] = 75;
  Context C;
  Stmt Body = buildHashSpec(C, Keys.data(), Vals.data(), 16);
  EXPECT_EQ(steadyStateAllocs(C, Body, 10), 0u);
}

TEST(AllocTest, ThreadLocalFallbackContextReachesZeroAllocArena) {
  // compileFn with no explicit context uses the per-thread fallback; after
  // a warmup compile the arena must stop growing there too.
  Context C;
  Stmt Body = buildPowerSpec(C, 21);
  RegionPool Pool;
  CompileOptions Opts;
  Opts.Backend = BackendKind::ICode;
  Opts.Pool = &Pool;
  for (int W = 0; W < 2; ++W) {
    CompiledFn F = compileFn(C, Body, EvalType::Int, Opts);
    EXPECT_TRUE(F.valid());
  }
  obs::Counter &Allocs =
      obs::MetricsRegistry::global().counter(obs::names::CompileAllocs);
  std::uint64_t Before = Allocs.value();
  for (int R = 0; R < 5; ++R) {
    CompiledFn F = compileFn(C, Body, EvalType::Int, Opts);
    EXPECT_TRUE(F.valid());
  }
  EXPECT_EQ(Allocs.value(), Before);
}

TEST(AllocTest, ContextPoolReusesContexts) {
  CompileContextPool Pool;
  CompileContext *First = nullptr;
  {
    auto H = Pool.acquire();
    First = H.get();
    ASSERT_NE(First, nullptr);
  }
  {
    auto H = Pool.acquire();
    EXPECT_EQ(H.get(), First) << "released context should be recycled";
  }
  auto S = Pool.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(Pool.size(), 1u);
}

TEST(AllocTest, EightThreadPoolReuseStress) {
  // 8 threads hammer one CompileService with distinct specs (distinct
  // exponents -> distinct cache keys -> every request compiles). The
  // service's context pool must never hand one context to two concurrent
  // compiles, and after the storm it holds at most one context per peak
  // concurrent compile. TSan (CI) checks the synchronization.
  cache::CompileService Service;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 24;
  // Wrapping integer power, matching the generated code's int multiplies.
  auto PowRef = [](int X, unsigned E) {
    std::uint32_t R = 1, B = static_cast<std::uint32_t>(X);
    while (E) {
      if (E & 1)
        R *= B;
      B *= B;
      E >>= 1;
    }
    return static_cast<int>(R);
  };
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        unsigned Exponent = 2 + static_cast<unsigned>(T * PerThread + I);
        Context C;
        Stmt Body = buildPowerSpec(C, Exponent);
        CompileOptions Opts;
        Opts.Backend = BackendKind::ICode;
        cache::FnHandle F =
            Service.getOrCompile(C, Body, EvalType::Int, Opts);
        if (!F || F->as<int(int)>()(3) != PowRef(3, Exponent))
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  auto S = Service.contextPool().stats();
  EXPECT_EQ(S.Hits + S.Misses,
            static_cast<std::uint64_t>(NumThreads * PerThread));
  EXPECT_LE(Service.contextPool().size(),
            static_cast<std::size_t>(NumThreads));
  EXPECT_GT(S.Hits, 0u) << "pool never recycled a context";
}
