//===- tests/verify_test.cpp - Self-checking JIT verification tests -------===//
//
// Part of tickc, a reproduction of "tcc: A System for Fast, Flexible, and
// High-level Dynamic Code Generation" (PLDI 1997).
//
// Two halves:
//
//  * Accept-clean: every benchmark workload compiles with Verify on, under
//    both register allocators and the VCODE backend, with zero findings.
//  * Mutation harness: systematically corrupt IR instructions, allocation
//    tables, and emitted machine bytes; every corruption must be rejected
//    by the right layer with the right diagnostic category. This is the
//    proof that the checkers have teeth — a verifier that accepts garbage
//    is worse than none.
//
//===----------------------------------------------------------------------===//

#include "bench/AppAdapters.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "icode/Analysis.h"
#include "icode/ICode.h"
#include "observability/Metrics.h"
#include "observability/Names.h"
#include "support/Reloc.h"
#include "verify/Verify.h"
#include "vcode/VCode.h"
#include "x86/X86Decoder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

using namespace tcc;
using namespace tcc::core;
using icode::Allocation;
using icode::ICode;
using icode::Instr;
using icode::Op;
using icode::VReg;
using vcode::CmpKind;

namespace {

int dummyCallee(int X) { return X + 1; }
double dummyCalleeD(double X) { return X * 2; }

// --- IR mutation harness ----------------------------------------------------

/// A small ICODE program plus a pristine copy of its instruction stream the
/// mutations work on (the ICode itself stays untouched so labels/pool/reg
/// tables remain the source of truth).
struct IRProgram {
  ICode IC;
  std::vector<Instr> Clean;

  void snapshot() {
    Clean.assign(IC.instrs().data(), IC.instrs().data() + IC.instrs().size());
  }
};

/// P1: straight-line integer arithmetic. Shape (instruction indices):
///   0 BindArgI  1 SetI  2 AddI  3 MulII  4 CmpSetI  5 ShlII  6 SubI  7 RetI
struct P1 : IRProgram {
  VReg A0, B, C, D, E, F, G, FD;
  P1() {
    A0 = IC.newIntReg();
    B = IC.newIntReg();
    C = IC.newIntReg();
    D = IC.newIntReg();
    E = IC.newIntReg();
    F = IC.newIntReg();
    G = IC.newIntReg();
    FD = IC.newFloatReg(); // Never used: exists to make class swaps possible.
    IC.bindArgI(0, A0);
    IC.setI(B, 7);
    IC.addI(C, A0, B);
    IC.mulII(D, C, 3);
    IC.cmpSetI(CmpKind::LtS, E, D, B);
    IC.shlII(F, E, 2);
    IC.subI(G, F, A0);
    IC.retI(G);
    snapshot();
  }
};

/// P2: a counted loop with labels and branches.
///   0 BindArgI  1 SetI  2 Label  3 BrCmpII  4 AddI  5 SubII  6 Jump
///   7 Label  8 RetI
struct P2 : IRProgram {
  VReg X, Acc;
  P2() {
    X = IC.newIntReg();
    Acc = IC.newIntReg();
    icode::ILabel Head = IC.newLabel(), End = IC.newLabel();
    IC.bindArgI(0, X);
    IC.setI(Acc, 0);
    IC.bindLabel(Head);
    IC.brCmpII(CmpKind::LeS, X, 0, End);
    IC.addI(Acc, Acc, X);
    IC.subII(X, X, 1);
    IC.jump(Head);
    IC.bindLabel(End);
    IC.retI(Acc);
    snapshot();
  }
};

/// P3: doubles and a call.
///   0 BindArgD  1 SetD  2 AddD  3 CallArgD  4 Call  5 ResultD
///   6 CvtDToI  7 RetI
struct P3 : IRProgram {
  VReg D0, D1, D2, D3, I0;
  P3() {
    D0 = IC.newFloatReg();
    D1 = IC.newFloatReg();
    D2 = IC.newFloatReg();
    D3 = IC.newFloatReg();
    I0 = IC.newIntReg();
    IC.bindArgD(0, D0);
    IC.setD(D1, 2.5);
    IC.addD(D2, D0, D1);
    IC.prepareCallArgD(0, D2);
    IC.emitCall(reinterpret_cast<const void *>(&dummyCalleeD), 1);
    IC.resultToD(D3);
    IC.cvtDToI(I0, D3);
    IC.retI(I0);
    snapshot();
  }
};

struct MutationTally {
  unsigned Cases = 0;
  unsigned Rejected = 0;
};

/// Applies one mutation to a fresh copy and checks the verifier rejects it
/// with the expected category.
void runIRCase(MutationTally &T, IRProgram &P, const char *Category,
               const std::function<void(std::vector<Instr> &)> &Mutate,
               const std::string &What) {
  std::vector<Instr> Buf = P.Clean;
  Mutate(Buf);
  verify::Result R = verify::verifyInstrs(P.IC, Buf.data(), Buf.size());
  ++T.Cases;
  EXPECT_FALSE(R.ok()) << What << ": corruption was accepted";
  EXPECT_TRUE(R.has(Category))
      << What << ": expected category '" << Category << "', got:\n"
      << R.render();
  if (!R.ok() && R.has(Category))
    ++T.Rejected;
}

// --- Allocation mutation harness --------------------------------------------

struct AllocFixture {
  ICode IC;
  std::vector<VReg> Overlapping; ///< Simultaneously live int vregs.
  VReg CrossCall = -1;           ///< Float vreg live across the call.

  AllocFixture() {
    // Eight int vregs all live at once (defined up front, consumed at the
    // bottom): with a five-register pool some of them must spill, and the
    // ones that do get registers pairwise overlap — the raw material for
    // conflict mutations.
    VReg R[8];
    for (int I = 0; I < 8; ++I) {
      R[I] = IC.newIntReg();
      IC.setI(R[I], I + 1);
      Overlapping.push_back(R[I]);
    }
    // A float computed before a call and used after it: every XMM register
    // is caller-saved, so the allocator must spill it.
    CrossCall = IC.newFloatReg();
    VReg FOut = IC.newFloatReg();
    IC.setD(CrossCall, 1.5);
    IC.emitCall(reinterpret_cast<const void *>(&dummyCallee), 0);
    VReg CallRes = IC.newIntReg();
    IC.resultToI(CallRes);
    IC.addD(FOut, CrossCall, CrossCall);
    VReg FInt = IC.newIntReg();
    IC.cvtDToI(FInt, FOut);
    VReg Acc = IC.newIntReg();
    IC.setI(Acc, 0);
    for (int I = 0; I < 8; ++I)
      IC.addI(Acc, Acc, R[I]);
    IC.addI(Acc, Acc, CallRes);
    IC.addI(Acc, Acc, FInt);
    IC.retI(Acc);
  }

  Allocation allocate(icode::RegAllocKind Kind, std::vector<int> &Backing) {
    icode::FlowGraph FG;
    FG.build(IC);
    FG.solveLiveness(IC);
    auto Intervals = icode::buildLiveIntervals(IC, FG);
    const std::uint8_t *MustSpill =
        icode::computeMustSpill(IC, Intervals.data(), Intervals.size());
    Allocation A =
        Kind == icode::RegAllocKind::LinearScan
            ? icode::allocateLinearScan(IC, Intervals, vcode::VCode::NumIntPool,
                                        vcode::VCode::NumFloatPool,
                                        icode::SpillHeuristic::LongestInterval,
                                        MustSpill)
            : icode::allocateGraphColor(IC, FG, vcode::VCode::NumIntPool,
                                        vcode::VCode::NumFloatPool,
                                        icode::SpillHeuristic::LongestInterval,
                                        MustSpill);
    // Re-home the table so mutations cannot scribble on the arena copy.
    Backing.assign(A.Location, A.Location + A.NumRegs);
    A.Location = Backing.data();
    return A;
  }
};

void runAllocCase(
    MutationTally &T, const ICode &IC, const Allocation &Clean,
    const char *Category,
    const std::function<void(Allocation &, std::vector<int> &)> &Mutate,
    const std::string &What) {
  std::vector<int> Locs(Clean.Location, Clean.Location + Clean.NumRegs);
  Allocation A = Clean;
  A.Location = Locs.data();
  Mutate(A, Locs);
  verify::Result R = verify::auditAllocation(IC, A);
  ++T.Cases;
  EXPECT_FALSE(R.ok()) << What << ": corruption was accepted";
  EXPECT_TRUE(R.has(Category))
      << What << ": expected category '" << Category << "', got:\n"
      << R.render();
  if (!R.ok() && R.has(Category))
    ++T.Rejected;
}

// --- Machine-code mutation harness ------------------------------------------

struct CompiledBytes {
  std::vector<std::uint8_t> Bytes;
  std::vector<x86::Decoded> Ins;
  std::vector<std::size_t> Starts;
  const void *Counter = nullptr;
  bool Profiled = false;

  static CompiledBytes of(const CompiledFn &F) {
    CompiledBytes B;
    B.Bytes.resize(F.stats().CodeBytes);
    std::memcpy(B.Bytes.data(), F.entry(), B.Bytes.size());
    B.Profiled = F.profile() != nullptr;
    B.Counter = F.profile() ? &F.profile()->Invocations : nullptr;
    std::size_t Off = 0;
    while (Off < B.Bytes.size()) {
      x86::Decoded D;
      const char *Err = nullptr;
      if (!x86::decodeOne(B.Bytes.data(), B.Bytes.size(), Off, D, &Err)) {
        ADD_FAILURE() << "clean code does not decode at +" << Off << ": "
                      << (Err ? Err : "?");
        break;
      }
      B.Starts.push_back(Off);
      B.Ins.push_back(D);
      Off += D.Len;
    }
    return B;
  }

  verify::MachineAuditInputs inputs() const {
    verify::MachineAuditInputs MA;
    MA.Code = Bytes.data();
    MA.Size = Bytes.size();
    MA.ProfileCounter = Counter;
    MA.ExpectProfile = Profiled;
    return MA;
  }
};

void runByteCase(MutationTally &T, const CompiledBytes &Clean,
                 const char *Category,
                 const std::function<void(std::vector<std::uint8_t> &,
                                          verify::MachineAuditInputs &)>
                     &Mutate,
                 const std::string &What) {
  std::vector<std::uint8_t> Buf = Clean.Bytes;
  verify::MachineAuditInputs MA = Clean.inputs();
  Mutate(Buf, MA);
  MA.Code = Buf.data();
  verify::Result R = verify::auditMachineCode(MA);
  ++T.Cases;
  EXPECT_FALSE(R.ok()) << What << ": corruption was accepted";
  EXPECT_TRUE(R.has(Category))
      << What << ": expected category '" << Category << "', got:\n"
      << R.render();
  if (!R.ok() && R.has(Category))
    ++T.Rejected;
}

/// sum of n*n for n in [1, N] — a loop with a branch, a multiply, and an
/// accumulator; compiles to branches + arithmetic under every backend.
CompiledFn compileLoopFn(const CompileOptions &Opts) {
  Context C;
  VSpec N = C.paramInt(0);
  VSpec Acc = C.localInt();
  Stmt Body = C.block(
      {C.assign(Acc, C.intConst(0)),
       C.whileStmt(Expr(N) > C.intConst(0),
                   C.block({C.assign(Acc, Expr(Acc) + Expr(N) * Expr(N)),
                            C.assign(N, Expr(N) - C.intConst(1))})),
       C.ret(Acc)});
  return compileFn(C, Body, EvalType::Int, Opts);
}

CompiledFn compileDoubleFn(const CompileOptions &Opts) {
  Context C;
  VSpec X = C.paramDouble(0);
  Stmt Body = C.ret(Expr(X) * C.doubleConst(3.5) + C.doubleConst(1.25));
  return compileFn(C, Body, EvalType::Double, Opts);
}

} // namespace

// --- Accept-clean -----------------------------------------------------------

TEST(VerifyAcceptClean, AllWorkloadsBothAllocatorsAndVCode) {
  obs::MetricsSnapshot Before = obs::MetricsRegistry::global().snapshot();
  bench::AppSet Apps;
  struct Cfg {
    BackendKind BK;
    icode::RegAllocKind RA;
  } Cfgs[] = {{BackendKind::VCode, icode::RegAllocKind::LinearScan},
              {BackendKind::ICode, icode::RegAllocKind::LinearScan},
              {BackendKind::ICode, icode::RegAllocKind::GraphColor}};
  unsigned Compiled = 0;
  for (const Cfg &Cf : Cfgs) {
    for (const bench::AppCase &App : Apps.cases()) {
      CompileOptions Opts;
      Opts.Backend = Cf.BK;
      Opts.RegAlloc = Cf.RA;
      Opts.Verify = true; // Any finding aborts: reaching the end IS the test.
      CompiledFn F = App.Specialize(Opts);
      ASSERT_TRUE(F.valid()) << App.Name;
      App.RunDynamic(F.entry());
      ++Compiled;
    }
  }
  obs::MetricsSnapshot After = obs::MetricsRegistry::global().snapshot();
  namespace N = obs::names;
  EXPECT_EQ(After.counter(N::VerifySpecFailed),
            Before.counter(N::VerifySpecFailed));
  EXPECT_EQ(After.counter(N::VerifyIrFailed), Before.counter(N::VerifyIrFailed));
  EXPECT_EQ(After.counter(N::VerifyAllocFailed),
            Before.counter(N::VerifyAllocFailed));
  EXPECT_EQ(After.counter(N::VerifyCodeFailed),
            Before.counter(N::VerifyCodeFailed));
  EXPECT_GE(After.counter(N::VerifySpecChecked),
            Before.counter(N::VerifySpecChecked) + Compiled);
  EXPECT_GE(After.counter(N::VerifyCodeChecked),
            Before.counter(N::VerifyCodeChecked) + Compiled);
  // ICODE compiles verify the IR twice (post-walk + post-peephole) and audit
  // the allocation once.
  EXPECT_GT(After.counter(N::VerifyIrChecked),
            Before.counter(N::VerifyIrChecked));
  EXPECT_GT(After.counter(N::VerifyAllocChecked),
            Before.counter(N::VerifyAllocChecked));
  EXPECT_GT(After.counter(N::VerifyCycles), Before.counter(N::VerifyCycles));
}

TEST(VerifyAcceptClean, ProfiledCompilePassesAndRuns) {
  CompileOptions Opts;
  Opts.Backend = BackendKind::ICode;
  Opts.Verify = true;
  Opts.Profile = true;
  Opts.ProfileName = "verify-clean";
  CompiledFn F = compileLoopFn(Opts);
  ASSERT_TRUE(F.valid());
  EXPECT_EQ(F.as<int(int)>()(4), 16 + 9 + 4 + 1);
}

// --- Spec lint --------------------------------------------------------------

TEST(VerifySpecLint, RejectsBadSpecs) {
  // Unbound free variable.
  {
    Context C;
    Stmt Body = C.ret(C.fvInt(nullptr));
    verify::Result R = verify::lintSpec(C, Body.node());
    EXPECT_TRUE(R.has("unbound-free-var")) << R.render();
  }
  // Cross-context splice: an expression owned by a different Context.
  {
    Context C1, C2;
    Expr Foreign = C2.intConst(7);
    Stmt Body = C1.ret(Foreign);
    verify::Result R = verify::lintSpec(C1, Body.node());
    EXPECT_TRUE(R.has("cross-context")) << R.render();
  }
  // $ over a call can never be a run-time constant.
  {
    Context C;
    Expr Call = C.callC(reinterpret_cast<const void *>(&dummyCallee),
                        EvalType::Int, {C.intConst(1)});
    Stmt Body = C.ret(C.rtEval(Call));
    verify::Result R = verify::lintSpec(C, Body.node());
    EXPECT_TRUE(R.has("nonconstant-rteval")) << R.render();
  }
  // Out-of-range vspec id (simulates a stale handle).
  {
    Context C;
    VSpec V = C.localInt();
    Stmt Body = C.block({C.assign(V, C.intConst(1)), C.ret(C.read(V))});
    Body.node()->BodyV[0]->LocalId = 99;
    verify::Result R = verify::lintSpec(C, Body.node());
    EXPECT_TRUE(R.has("bad-local")) << R.render();
  }
  // Dynamic label outside the context's table.
  {
    Context C;
    DynLabel L = C.newLabel();
    Stmt Body = C.block({C.gotoLabel(L), C.labelHere(L), C.retVoid()});
    Body.node()->BodyV[0]->LocalId = 57;
    verify::Result R = verify::lintSpec(C, Body.node());
    EXPECT_TRUE(R.has("bad-dynlabel")) << R.render();
  }
  // Structurally broken node.
  {
    Context C;
    Stmt Body = C.ret(C.intConst(1));
    Body.node()->Kind = static_cast<StmtKind>(77);
    verify::Result R = verify::lintSpec(C, Body.node());
    EXPECT_TRUE(R.has("malformed-node")) << R.render();
  }
  // A clean spec stays clean.
  {
    Context C;
    VSpec X = C.paramInt(0);
    Stmt Body = C.ret(Expr(X) * C.intConst(3));
    verify::Result R = verify::lintSpec(C, Body.node());
    EXPECT_TRUE(R.ok()) << R.render();
  }
}

// --- IR mutations -----------------------------------------------------------

TEST(VerifyMutation, CorruptedIRIsRejected) {
  P1 A;
  P2 B;
  P3 C;
  MutationTally T;

  // Clean streams pass.
  EXPECT_TRUE(verify::verifyICode(A.IC).ok())
      << verify::verifyICode(A.IC).render();
  EXPECT_TRUE(verify::verifyICode(B.IC).ok())
      << verify::verifyICode(B.IC).render();
  EXPECT_TRUE(verify::verifyICode(C.IC).ok())
      << verify::verifyICode(C.IC).render();

  // Bulk: an out-of-enum opcode byte anywhere is caught.
  for (IRProgram *P : {static_cast<IRProgram *>(&A), static_cast<IRProgram *>(&B),
                       static_cast<IRProgram *>(&C)})
    for (std::size_t I = 0; I < P->Clean.size(); ++I)
      runIRCase(
          T, *P, "bad-opcode",
          [I](std::vector<Instr> &S) { S[I].Opcode = static_cast<Op>(0xEE); },
          "opcode byte smash at " + std::to_string(I));

  // Operand out of range (per reg-typed field).
  runIRCase(T, A, "operand-range",
            [](std::vector<Instr> &S) { S[2].A = 9999; },
            "AddI dest out of range");
  runIRCase(T, A, "operand-range",
            [](std::vector<Instr> &S) { S[2].B = 9999; },
            "AddI src out of range");
  runIRCase(T, A, "operand-range", [](std::vector<Instr> &S) { S[6].C = -3; },
            "SubI negative reg");
  runIRCase(T, B, "operand-range",
            [](std::vector<Instr> &S) { S[4].A = 12345; },
            "loop AddI reg out of range");
  runIRCase(T, C, "operand-range",
            [](std::vector<Instr> &S) { S[2].B = 9999; },
            "AddD reg out of range");

  // Class swaps: float reg in an int slot and vice versa.
  runIRCase(T, A, "operand-class",
            [&A](std::vector<Instr> &S) { S[2].B = A.FD; },
            "AddI fed a float reg");
  runIRCase(T, A, "operand-class",
            [&A](std::vector<Instr> &S) { S[7].A = A.FD; },
            "RetI of a float reg");
  runIRCase(T, C, "operand-class",
            [&C](std::vector<Instr> &S) { S[2].B = C.I0; },
            "AddD fed an int reg");
  runIRCase(T, C, "operand-class",
            [&C](std::vector<Instr> &S) { S[6].B = C.I0; },
            "CvtDToI fed an int reg");

  // Sub-opcode abuse.
  runIRCase(T, A, "bad-sub", [](std::vector<Instr> &S) { S[2].Sub = 3; },
            "AddI with nonzero sub");
  runIRCase(T, A, "bad-sub", [](std::vector<Instr> &S) { S[4].Sub = 77; },
            "CmpSetI with bogus CmpKind");
  runIRCase(T, B, "bad-sub", [](std::vector<Instr> &S) { S[3].Sub = 99; },
            "BrCmpII with bogus CmpKind");

  // Branch/label integrity.
  runIRCase(T, B, "bad-label",
            [&B](std::vector<Instr> &S) {
              S[6].A = static_cast<std::int32_t>(B.IC.numLabels()) + 5;
            },
            "Jump to unknown label");
  runIRCase(T, B, "bad-label",
            [&B](std::vector<Instr> &S) {
              S[3].C = static_cast<std::int32_t>(B.IC.numLabels()) + 5;
            },
            "BrCmpII to unknown label");

  // Pool references.
  runIRCase(T, C, "bad-pool",
            [&C](std::vector<Instr> &S) {
              S[1].B = static_cast<std::int32_t>(C.IC.poolSize()) + 3;
            },
            "SetD pool index out of range");
  runIRCase(T, C, "bad-pool",
            [&C](std::vector<Instr> &S) {
              S[4].A = static_cast<std::int32_t>(C.IC.poolSize()) + 9;
            },
            "Call pool index out of range");

  // Immediate-range fields.
  runIRCase(T, A, "bad-imm", [](std::vector<Instr> &S) { S[5].C = 64; },
            "shift amount 64");
  runIRCase(T, C, "bad-imm", [](std::vector<Instr> &S) { S[3].A = 8; },
            "fp call slot 8");
  runIRCase(T, C, "bad-imm", [](std::vector<Instr> &S) { S[4].B = 9; },
            "call with 9 fp args");
  runIRCase(T, A, "bad-imm", [](std::vector<Instr> &S) { S[0].B = -1; },
            "bind of arg -1");

  // BindArg after the body started.
  runIRCase(T, A, "misplaced-bindarg",
            [&A](std::vector<Instr> &S) {
              S[3] = Instr{Op::BindArgI, 0, A.D, 0, 0};
            },
            "BindArgI mid-function");

  // Call-argument grouping.
  runIRCase(T, C, "bad-callargs", [](std::vector<Instr> &S) { S[3].A = 1; },
            "fp arg slot not dense");
  runIRCase(T, C, "bad-callargs", [](std::vector<Instr> &S) { S[4].B = 2; },
            "call fp-arity mismatch");
  runIRCase(T, A, "bad-callargs",
            [&A](std::vector<Instr> &S) {
              S[1] = Instr{Op::CallArgI, 0, 0, A.A0, 0};
            },
            "orphan call argument");

  // Termination.
  runIRCase(T, A, "missing-ret",
            [](std::vector<Instr> &S) { S[7].Opcode = Op::Nop; },
            "function falls off the end");
  runIRCase(T, B, "missing-ret",
            [](std::vector<Instr> &S) { S[8].Opcode = Op::Nop; },
            "loop falls off the end");

  // Definite assignment.
  runIRCase(T, A, "use-before-def",
            [](std::vector<Instr> &S) { S[1].Opcode = Op::Nop; },
            "SetI removed before use");
  runIRCase(T, B, "use-before-def",
            [](std::vector<Instr> &S) { S[1].Opcode = Op::Nop; },
            "loop accumulator never defined");
  runIRCase(T, C, "use-before-def",
            [](std::vector<Instr> &S) { S[1].Opcode = Op::Nop; },
            "SetD removed before use");

  EXPECT_GE(T.Cases, 50u);
  EXPECT_EQ(T.Rejected, T.Cases) << "some IR corruptions slipped through";
}

// --- Allocation mutations ---------------------------------------------------

TEST(VerifyMutation, CorruptedAllocationIsRejected) {
  AllocFixture Fx;
  ASSERT_TRUE(verify::verifyICode(Fx.IC).ok())
      << verify::verifyICode(Fx.IC).render();
  MutationTally T;

  for (icode::RegAllocKind Kind :
       {icode::RegAllocKind::LinearScan, icode::RegAllocKind::GraphColor}) {
    std::vector<int> Backing;
    Allocation Clean = Fx.allocate(Kind, Backing);
    {
      verify::Result R = verify::auditAllocation(Fx.IC, Clean);
      ASSERT_TRUE(R.ok()) << R.render();
    }

    // Every vreg the allocator placed in a register, and the subset of the
    // deliberately overlapping ints among them.
    std::vector<VReg> InRegAll, InRegOverlap;
    for (unsigned V = 0; V < Clean.NumRegs; ++V)
      if (Clean.Location[V] >= 0)
        InRegAll.push_back(static_cast<VReg>(V));
    for (VReg V : Fx.Overlapping)
      if (Clean.Location[V] >= 0)
        InRegOverlap.push_back(V);
    ASSERT_GE(InRegAll.size(), 4u);
    ASSERT_GE(InRegOverlap.size(), 2u);

    // Duplicate physical registers among simultaneously live vregs.
    for (std::size_t I = 0; I < InRegOverlap.size(); ++I)
      for (std::size_t J = 0; J < InRegOverlap.size(); ++J) {
        if (I == J)
          continue;
        VReg VI = InRegOverlap[I], VJ = InRegOverlap[J];
        if (Clean.Location[VI] == Clean.Location[VJ])
          continue;
        runAllocCase(T, Fx.IC, Clean, "phys-conflict",
                     [VI, VJ](Allocation &, std::vector<int> &L) {
                       L[static_cast<std::size_t>(VI)] =
                           L[static_cast<std::size_t>(VJ)];
                     },
                     "duplicate phys assignment");
      }

    // Locations outside the pools, and occurring vregs demoted to Unused.
    for (VReg V : InRegAll) {
      for (int Bad : {99, 1000, -5})
        runAllocCase(T, Fx.IC, Clean, "location-range",
                     [V, Bad](Allocation &, std::vector<int> &L) {
                       L[static_cast<std::size_t>(V)] = Bad;
                     },
                     "location out of pool range");
      runAllocCase(T, Fx.IC, Clean, "unused-occurring",
                   [V](Allocation &, std::vector<int> &L) {
                     L[static_cast<std::size_t>(V)] = Allocation::Unused;
                   },
                   "live vreg marked unused");
    }

    // The call-crossing float must stay spilled; "allocating" it puts a
    // value in a caller-saved XMM register across the call.
    ASSERT_EQ(Clean.Location[Fx.CrossCall], Allocation::Spilled);
    runAllocCase(T, Fx.IC, Clean, "caller-saved-across-call",
                 [&Fx](Allocation &A2, std::vector<int> &L) {
                   L[static_cast<std::size_t>(Fx.CrossCall)] = 11;
                   A2.NumSpilled -= 1; // Keep the spill count consistent.
                 },
                 "float un-spilled across a call");
    runAllocCase(T, Fx.IC, Clean, "location-range",
                 [&Fx](Allocation &A2, std::vector<int> &L) {
                   L[static_cast<std::size_t>(Fx.CrossCall)] = 99;
                   A2.NumSpilled -= 1;
                 },
                 "spilled float location out of range");

    // Bookkeeping lies.
    runAllocCase(T, Fx.IC, Clean, "spill-count",
                 [](Allocation &A2, std::vector<int> &) { A2.NumSpilled += 1; },
                 "spill count inflated");
    runAllocCase(T, Fx.IC, Clean, "alloc-shape",
                 [](Allocation &A2, std::vector<int> &) { A2.NumRegs -= 1; },
                 "table shorter than numRegs");
  }

  EXPECT_GE(T.Cases, 50u);
  EXPECT_EQ(T.Rejected, T.Cases)
      << "some allocation corruptions slipped through";
}

// --- Machine-code mutations -------------------------------------------------

TEST(VerifyMutation, CorruptedBytesAreRejected) {
  MutationTally T;
  std::vector<CompiledBytes> Bodies;

  for (BackendKind BK : {BackendKind::VCode, BackendKind::ICode}) {
    CompileOptions Opts;
    Opts.Backend = BK;
    Bodies.push_back(CompiledBytes::of(compileLoopFn(Opts)));
    Bodies.push_back(CompiledBytes::of(compileDoubleFn(Opts)));
  }
  CompileOptions ProfOpts;
  ProfOpts.Backend = BackendKind::ICode;
  ProfOpts.Profile = true;
  ProfOpts.ProfileName = "verify-mutation";
  CompiledFn ProfFn = compileLoopFn(ProfOpts); // Outlives its counter uses.
  Bodies.push_back(CompiledBytes::of(ProfFn));

  for (const CompiledBytes &CB : Bodies) {
    ASSERT_FALSE(CB.Bytes.empty());
    ASSERT_GE(CB.Ins.size(), 5u);
    // Clean bytes pass.
    {
      verify::Result R = verify::auditMachineCode(CB.inputs());
      EXPECT_TRUE(R.ok()) << R.render();
    }

    // Bulk: an undecodable opcode byte at instruction starts.
    for (std::size_t I = 0; I < CB.Starts.size(); I += 3)
      runByteCase(T, CB, "decode",
                  [&CB, I](std::vector<std::uint8_t> &Buf,
                           verify::MachineAuditInputs &) {
                    Buf[CB.Starts[I]] = 0x06; // push es: invalid in 64-bit.
                  },
                  "invalid opcode at instr " + std::to_string(I));

    // REX.X can never appear (neither emitter uses scaled indexing).
    for (std::size_t I = 0; I < CB.Starts.size(); ++I)
      if ((CB.Bytes[CB.Starts[I]] & 0xF0) == 0x40) {
        runByteCase(T, CB, "decode",
                    [&CB, I](std::vector<std::uint8_t> &Buf,
                             verify::MachineAuditInputs &) {
                      Buf[CB.Starts[I]] |= 0x02;
                    },
                    "REX.X planted at instr " + std::to_string(I));
        break;
      }

    // Every ret turned into a nop unbalances the frame.
    for (std::size_t I = 0; I < CB.Ins.size(); ++I)
      if (CB.Ins[I].Cls == x86::InstrClass::Ret)
        runByteCase(T, CB, "stack-balance",
                    [&CB, I](std::vector<std::uint8_t> &Buf,
                             verify::MachineAuditInputs &) {
                      Buf[CB.Starts[I]] = 0x90;
                    },
                    "ret replaced with nop");

    // Every relative branch redirected out of the region.
    for (std::size_t I = 0; I < CB.Ins.size(); ++I)
      if (CB.Ins[I].Cls == x86::InstrClass::Jcc ||
          CB.Ins[I].Cls == x86::InstrClass::Jmp)
        runByteCase(T, CB, "branch-target",
                    [&CB, I](std::vector<std::uint8_t> &Buf,
                             verify::MachineAuditInputs &) {
                      std::int32_t Wild = 1 << 20;
                      std::memcpy(&Buf[CB.Starts[I] + CB.Ins[I].Len - 4],
                                  &Wild, 4);
                    },
                    "branch redirected out of region");

    // Prologue vandalism: push rax instead of push rbp.
    runByteCase(T, CB, "prologue",
                [](std::vector<std::uint8_t> &Buf,
                   verify::MachineAuditInputs &) { Buf[0] = 0x50; },
                "push rbp replaced");

    // Truncation into the frame-reserve imm32 (instruction 2, 7 bytes).
    runByteCase(T, CB, "boundary",
                [&CB](std::vector<std::uint8_t> &Buf,
                      verify::MachineAuditInputs &MA) {
                  std::size_t Cut = CB.Starts[2] + 2;
                  Buf.resize(Cut);
                  MA.Size = Cut;
                },
                "region truncated mid-instruction");
  }

  // Profiling-hook integrity (on the profiled body).
  const CompiledBytes &PB = Bodies.back();
  ASSERT_TRUE(PB.Profiled);
  runByteCase(T, PB, "profile",
              [](std::vector<std::uint8_t> &,
                 verify::MachineAuditInputs &MA) { MA.ExpectProfile = false; },
              "hook present but profiling off");
  runByteCase(T, PB, "profile",
              [](std::vector<std::uint8_t> &, verify::MachineAuditInputs &MA) {
                static std::uint64_t NotTheCounter;
                MA.ProfileCounter = &NotTheCounter;
              },
              "hook targets an unregistered counter");
  bool FoundHook = false;
  for (std::size_t I = 0; I + 1 < PB.Ins.size(); ++I)
    if (PB.Ins[I].Cls == x86::InstrClass::MovImm64 && PB.Ins[I].Rm == 10 &&
        PB.Ins[I + 1].Cls == x86::InstrClass::LockInc) {
      FoundHook = true;
      runByteCase(T, PB, "profile",
                  [&PB, I](std::vector<std::uint8_t> &Buf,
                           verify::MachineAuditInputs &) {
                    Buf[PB.Starts[I] + 5] ^= 0x40; // Flip an imm64 byte.
                  },
                  "counter address corrupted");
      break;
    }
  EXPECT_TRUE(FoundHook) << "no movabs-r10 + lock-inc pair in profiled code";
  // A non-profiled body cannot satisfy an expected hook.
  runByteCase(T, Bodies.front(), "profile",
              [](std::vector<std::uint8_t> &, verify::MachineAuditInputs &MA) {
                static std::uint64_t Counter;
                MA.ExpectProfile = true;
                MA.ProfileCounter = &Counter;
              },
              "profiling expected but no hook planted");

  EXPECT_GE(T.Cases, 50u);
  EXPECT_EQ(T.Rejected, T.Cases) << "some byte corruptions slipped through";
}

TEST(VerifyMutation, EmitterUsageCrossCheckCatchesForeignInstructions) {
  // Warm the usage table with a real ICODE compile so ordinary opcodes are
  // recorded, then hand-assemble a function containing an instruction no
  // ICODE opcode can justify (movsx r32, r16): the cross-check must flag it
  // even though it decodes fine.
  CompileOptions Opts;
  Opts.Backend = BackendKind::ICode;
  (void)compileLoopFn(Opts);

  std::vector<std::uint8_t> Code = {
      0x55,                                     // push rbp
      0x48, 0x8B, 0xEC,                         // mov rbp, rsp
      0x48, 0x81, 0xEC, 0x30, 0x00, 0x00, 0x00, // sub rsp, 48
      0x0F, 0xBF, 0xC1,                         // movsx eax, cx  <-- foreign
      0x48, 0x8B, 0xE5,                         // mov rsp, rbp
      0x5D,                                     // pop rbp
      0xC3,                                     // ret
  };
  verify::MachineAuditInputs MA;
  MA.Code = Code.data();
  MA.Size = Code.size();
  MA.CrossCheckEmitterUsage = true;
  verify::Result R = verify::auditMachineCode(MA);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.has("emitter-usage")) << R.render();

  // The same frame without the foreign instruction is fine.
  std::vector<std::uint8_t> Clean = Code;
  Clean.erase(Clean.begin() + 11, Clean.begin() + 14);
  MA.Code = Clean.data();
  MA.Size = Clean.size();
  R = verify::auditMachineCode(MA);
  EXPECT_TRUE(R.ok()) << R.render();
}

// --- Admission (layer 5) ----------------------------------------------------

namespace {

/// One unit for the admission mutation harness: finalized bytes plus the
/// reloc side table and profile expectation — exactly what a snapshot
/// record presents to verify::verifyAdmission after patching.
struct AdmitProgram {
  std::vector<std::uint8_t> Bytes;
  std::vector<x86::Decoded> Ins;
  std::vector<std::size_t> Starts;
  std::vector<verify::AdmissionReloc> Relocs;
  bool HaveRelocs = false;
  const void *Counter = nullptr;
  bool Profiled = false;

  void decode() {
    Ins.clear();
    Starts.clear();
    std::size_t Off = 0;
    while (Off < Bytes.size()) {
      x86::Decoded D;
      const char *Err = nullptr;
      if (!x86::decodeOne(Bytes.data(), Bytes.size(), Off, D, &Err))
        break; // Hostile streams may stop decoding; the verifier says why.
      Starts.push_back(Off);
      Ins.push_back(D);
      Off += D.Len;
    }
  }

  static AdmitProgram of(const CompiledFn &F, const support::RelocTable *RT) {
    AdmitProgram P;
    P.Bytes.resize(F.stats().CodeBytes);
    std::memcpy(P.Bytes.data(), F.entry(), P.Bytes.size());
    P.Profiled = F.profile() != nullptr;
    P.Counter = F.profile() ? &F.profile()->Invocations : nullptr;
    if (RT && !RT->Unportable) {
      P.HaveRelocs = true;
      for (const support::RelocEntry &E : RT->Entries)
        P.Relocs.push_back({E.Offset, static_cast<std::uint8_t>(E.Kind)});
    }
    P.decode();
    return P;
  }

  static AdmitProgram hand(std::vector<std::uint8_t> B) {
    AdmitProgram P;
    P.Bytes = std::move(B);
    P.decode();
    return P;
  }

  verify::AdmissionInputs inputs() const {
    verify::AdmissionInputs AI;
    AI.Code = Bytes.data();
    AI.Size = Bytes.size();
    AI.ProfileCounter = Counter;
    AI.ExpectProfile = Profiled;
    AI.Relocs = Relocs.empty() ? nullptr : Relocs.data();
    AI.NumRelocs = Relocs.size();
    AI.HaveRelocs = HaveRelocs;
    return AI;
  }
};

/// Canonical frame around \p Body: push rbp / mov rbp, rsp / sub rsp, 48 /
/// <body> / mov rsp, rbp / pop rbp / ret. Body instructions start at +11.
std::vector<std::uint8_t> handFrame(const std::vector<std::uint8_t> &Body) {
  std::vector<std::uint8_t> B = {0x55, 0x48, 0x8B, 0xEC, 0x48, 0x81,
                                 0xEC, 0x30, 0x00, 0x00, 0x00};
  B.insert(B.end(), Body.begin(), Body.end());
  const std::uint8_t Epi[] = {0x48, 0x8B, 0xE5, 0x5D, 0xC3};
  B.insert(B.end(), std::begin(Epi), std::end(Epi));
  return B;
}

void appendU64(std::vector<std::uint8_t> &B, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
}

/// movabs r10, &dummyCallee / call r10 — the backends' only call shape.
/// The movabs imm64 payload sits at body offset +2 (frame offset +13).
std::vector<std::uint8_t> callBody() {
  std::vector<std::uint8_t> B = {0x49, 0xBA};
  appendU64(B, reinterpret_cast<std::uint64_t>(
                   reinterpret_cast<const void *>(&dummyCallee)));
  B.insert(B.end(), {0x41, 0xFF, 0xD2});
  return B;
}

void runAdmitCase(MutationTally &T, AdmitProgram P, const char *Category,
                  const std::function<void(AdmitProgram &)> &Mutate,
                  const std::string &What) {
  Mutate(P);
  verify::Result R = verify::verifyAdmission(P.inputs());
  ++T.Cases;
  EXPECT_FALSE(R.ok()) << What << ": hostile record was admitted";
  EXPECT_TRUE(R.has(Category))
      << What << ": expected category '" << Category << "', got:\n"
      << R.render();
  if (!R.ok() && R.has(Category))
    ++T.Rejected;
}

void admitNoop(AdmitProgram &) {}

/// f(x) = dummyCallee(x) + x — a body with a C call under every backend.
CompiledFn compileCallFn(const CompileOptions &Opts) {
  Context C;
  VSpec X = C.paramInt(0);
  Expr Call = C.callC(reinterpret_cast<const void *>(&dummyCallee),
                      EvalType::Int, {Expr(X)});
  Stmt Body = C.ret(Call + Expr(X));
  return compileFn(C, Body, EvalType::Int, Opts);
}

} // namespace

TEST(VerifyAdmission, AcceptsCleanHandFrames) {
  // The canonical empty frame.
  verify::Result R =
      verify::verifyAdmission(AdmitProgram::hand(handFrame({})).inputs());
  EXPECT_TRUE(R.ok()) << R.render();

  // An ABI-aligned indirect call with no reloc table: fresh-compile mode
  // trusts the emitter's own immediates.
  R = verify::verifyAdmission(
      AdmitProgram::hand(handFrame(callBody())).inputs());
  EXPECT_TRUE(R.ok()) << R.render();

  // A stack-passed argument load ([rbp+16] and up is the caller's arg
  // area — above the unreachable saved rbp / return address window).
  R = verify::verifyAdmission(
      AdmitProgram::hand(handFrame({0x48, 0x8B, 0x45, 0x10})).inputs());
  EXPECT_TRUE(R.ok()) << R.render();

  // Arithmetic on run-time values stays an admissible call target: an
  // indirect call through a register computed from a loaded value (via a
  // register-register add) is how generated dispatch code looks.
  {
    std::vector<std::uint8_t> Body = {
        0x48, 0x8B, 0x45, 0x10,  // mov rax, [rbp+16]
        0x48, 0x8B, 0x55, 0xD0,  // mov rdx, [rbp-48]
        0x48, 0x03, 0xC2,        // add rax, rdx
        0xFF, 0xD0};             // call rax
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    R = verify::verifyAdmission(P.inputs());
    EXPECT_TRUE(R.ok()) << R.render();
  }

  // The same call as a snapshot would present it: the movabs payload is a
  // declared Callee relocation slot, so the target is proven confined even
  // after a round trip through a tracked spill slot.
  std::vector<std::uint8_t> Body = {0x49, 0xBA};
  appendU64(Body, reinterpret_cast<std::uint64_t>(
                      reinterpret_cast<const void *>(&dummyCallee)));
  Body.insert(Body.end(), {0x4C, 0x89, 0x55, 0xD8,   // mov [rbp-40], r10
                           0x4C, 0x8B, 0x55, 0xD8,   // mov r10, [rbp-40]
                           0x41, 0xFF, 0xD2});       // call r10
  AdmitProgram P = AdmitProgram::hand(handFrame(Body));
  P.HaveRelocs = true;
  P.Relocs.push_back(
      {13, static_cast<std::uint8_t>(support::RelocKind::Callee)});
  R = verify::verifyAdmission(P.inputs());
  EXPECT_TRUE(R.ok()) << R.render();
}

TEST(VerifyAdmission, HostileRecordsRejected) {
  MutationTally T;

  // --- CFG recovery and decode ---------------------------------------------
  runAdmitCase(T, AdmitProgram::hand({}), "boundary", admitNoop,
               "empty region");
  runAdmitCase(T, AdmitProgram::hand({0x55}), "prologue", admitNoop,
               "bare push rbp");
  {
    // push rax instead of push rbp.
    std::vector<std::uint8_t> B = handFrame({});
    B[0] = 0x50;
    runAdmitCase(T, AdmitProgram::hand(B), "prologue", admitNoop,
                 "wrong prologue push");
  }
  {
    // Unaligned frame reserve (49 bytes).
    std::vector<std::uint8_t> B = handFrame({});
    B[7] = 0x31;
    runAdmitCase(T, AdmitProgram::hand(B), "prologue", admitNoop,
                 "unaligned frame reserve");
  }
  {
    // Reserve too small to cover the callee-save area (32 bytes).
    std::vector<std::uint8_t> B = handFrame({});
    B[7] = 0x20;
    runAdmitCase(T, AdmitProgram::hand(B), "prologue", admitNoop,
                 "undersized frame reserve");
  }
  {
    // Final ret smashed to nop: execution would fall off the end.
    std::vector<std::uint8_t> B = handFrame({});
    B.back() = 0x90;
    runAdmitCase(T, AdmitProgram::hand(B), "cfg-fallthrough", admitNoop,
                 "ret replaced by nop");
  }
  {
    // Garbage appended after the ret still has to decode.
    std::vector<std::uint8_t> B = handFrame({});
    B.push_back(0x06);
    runAdmitCase(T, AdmitProgram::hand(B), "decode", admitNoop,
                 "undecodable trailer");
  }
  {
    // Decodable trailer without a terminator.
    std::vector<std::uint8_t> B = handFrame({});
    B.insert(B.end(), {0x33, 0xC0});
    runAdmitCase(T, AdmitProgram::hand(B), "cfg-fallthrough", admitNoop,
                 "code after final ret");
  }
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x41, 0xFF, 0xE2})),
               "branch-target", admitNoop, "indirect jump");
  runAdmitCase(T,
               AdmitProgram::hand(handFrame({0xE9, 0x00, 0x00, 0x10, 0x00})),
               "branch-target", admitNoop, "branch leaves the region");
  runAdmitCase(T,
               AdmitProgram::hand(handFrame({0xE9, 0xF5, 0xFF, 0xFF, 0xFF})),
               "branch-target", admitNoop,
               "branch into the middle of the frame reserve");

  // --- Stack discipline ------------------------------------------------------
  {
    // Jump back to the prologue: the entry block would be re-entered at
    // depth 56 — an equality-domain join mismatch.
    runAdmitCase(
        T, AdmitProgram::hand(handFrame({0xE9, 0xF0, 0xFF, 0xFF, 0xFF})),
        "stack-balance", admitNoop, "loop back into the prologue");
  }
  {
    std::vector<std::uint8_t> B = handFrame({});
    B[B.size() - 2] = 0x5B; // pop rbx instead of pop rbp
    runAdmitCase(T, AdmitProgram::hand(B), "stack-balance", admitNoop,
                 "epilogue pops the wrong register");
  }
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x83, 0xC4, 0x40})),
               "stack-balance", admitNoop,
               "add rsp, 64 unwinds above the entry rsp");
  {
    // jz over a `sub rsp, 8`: the two paths reach the epilogue at depths
    // 64 and 56.
    std::vector<std::uint8_t> B =
        handFrame({0x33, 0xC0,                         // xor eax, eax
                   0x85, 0xC0,                         // test eax, eax
                   0x0F, 0x84, 0x04, 0x00, 0x00, 0x00, // jz +4
                   0x48, 0x83, 0xEC, 0x08});           // sub rsp, 8
    runAdmitCase(T, AdmitProgram::hand(B), "stack-balance", admitNoop,
                 "paths join at different depths");
  }
  {
    // Call at depth 64: rsp not 16-byte aligned at the call.
    std::vector<std::uint8_t> B = {0x48, 0x83, 0xEC, 0x08}; // sub rsp, 8
    std::vector<std::uint8_t> CB = callBody();
    B.insert(B.end(), CB.begin(), CB.end());
    B.insert(B.end(), {0x48, 0x83, 0xC4, 0x08}); // add rsp, 8
    runAdmitCase(T, AdmitProgram::hand(handFrame(B)), "stack-balance",
                 admitNoop, "indirect call at misaligned depth");
  }

  // --- Frame integrity -------------------------------------------------------
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x8B, 0xC5})),
               "frame-escape", admitNoop, "mov rax, rbp");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x89, 0x45, 0x08})),
               "frame-escape", admitNoop,
               "store above rbp (return address reachable)");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x89, 0x45, 0xC8})),
               "frame-escape", admitNoop, "store below the reserved frame");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x8D, 0x45, 0xF8})),
               "frame-escape", admitNoop, "lea rax, [rbp-8]");
  runAdmitCase(T,
               AdmitProgram::hand(handFrame({0x48, 0x89, 0x44, 0x24, 0x08})),
               "frame-escape", admitNoop, "rsp-based store");

  // --- Width-aware frame integrity (access ranges, not just displacements) --
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x89, 0x45, 0xFF})),
               "frame-escape", admitNoop,
               "qword store at [rbp-1] reaches the saved rbp");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x89, 0x45, 0xFD})),
               "frame-escape", admitNoop,
               "dword store at [rbp-3] reaches the saved rbp");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x8B, 0x45, 0x00})),
               "frame-escape", admitNoop, "load of the saved rbp");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x8B, 0x45, 0x08})),
               "frame-escape", admitNoop, "load of the return address");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x8B, 0x45, 0xFC})),
               "frame-escape", admitNoop,
               "qword load at [rbp-4] crossing into the saved rbp");

  // --- Frame-address escape channels beyond `mov r, rbp` --------------------
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x89, 0x6D, 0xD0})),
               "frame-escape", admitNoop,
               "rbp value stored to a frame slot");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x03, 0xC5})),
               "frame-escape", admitNoop, "add rax, rbp");
  runAdmitCase(T,
               AdmitProgram::hand(handFrame({0x66, 0x48, 0x0F, 0x6E, 0xC5})),
               "frame-escape", admitNoop, "movq xmm0, rbp");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0xFF, 0xD5})),
               "frame-escape", admitNoop, "call through rbp");

  // --- Callee-saved obligations ---------------------------------------------
  runAdmitCase(T, AdmitProgram::hand(handFrame({0xBB, 0x01, 0x00, 0x00,
                                                0x00})),
               "callee-saved", admitNoop, "rbx written before being saved");
  runAdmitCase(T,
               AdmitProgram::hand(handFrame({0x48, 0x89, 0x5D, 0xF8,  // save
                                             0x48, 0x33, 0xDB})),    // xor rbx
               "callee-saved", admitNoop,
               "rbx clobbered but never restored");
  runAdmitCase(T, AdmitProgram::hand(handFrame({0x48, 0x8B, 0x5D, 0xF8})),
               "callee-saved", admitNoop,
               "restore load from a slot never saved");
  {
    // Save rbx, clobber it, then overwrite the live save slot: the value
    // the restore proof would hand back to the caller is gone.
    std::vector<std::uint8_t> B =
        handFrame({0x48, 0x89, 0x5D, 0xF8,   // mov [rbp-8], rbx (save)
                   0x48, 0x33, 0xDB,         // xor rbx, rbx
                   0x48, 0x89, 0x45, 0xF8,   // mov [rbp-8], rax
                   0x48, 0x8B, 0x5D, 0xF8}); // mov rbx, [rbp-8] (restore)
    runAdmitCase(T, AdmitProgram::hand(B), "callee-saved", admitNoop,
                 "live save slot overwritten before the restore");
  }
  {
    // Misaligned qword store straddling the live rbx save slot.
    std::vector<std::uint8_t> B =
        handFrame({0x48, 0x89, 0x5D, 0xF8,   // mov [rbp-8], rbx (save)
                   0x48, 0x33, 0xDB,         // xor rbx, rbx
                   0x48, 0x89, 0x45, 0xF7,   // mov [rbp-9], rax
                   0x48, 0x8B, 0x5D, 0xF8}); // mov rbx, [rbp-8] (restore)
    runAdmitCase(T, AdmitProgram::hand(B), "callee-saved", admitNoop,
                 "misaligned store straddling a live save slot");
  }
  {
    // Partial dword store into the live rbx save slot.
    std::vector<std::uint8_t> B =
        handFrame({0x48, 0x89, 0x5D, 0xF8,   // mov [rbp-8], rbx (save)
                   0x48, 0x33, 0xDB,         // xor rbx, rbx
                   0x89, 0x45, 0xF8,         // mov [rbp-8], eax
                   0x48, 0x8B, 0x5D, 0xF8}); // mov rbx, [rbp-8] (restore)
    runAdmitCase(T, AdmitProgram::hand(B), "callee-saved", admitNoop,
                 "partial store into a live save slot");
  }

  // --- Call-target confinement ----------------------------------------------
  {
    // An imm64 call target that is not a declared relocation slot.
    AdmitProgram P = AdmitProgram::hand(handFrame(callBody()));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "embedded imm64 call target outside the reloc table");
  }
  {
    // The same, laundered through a store/reload of a tracked frame slot.
    std::vector<std::uint8_t> Body = {0x49, 0xBA};
    appendU64(Body, 0x4141414141414141ull);
    Body.insert(Body.end(), {0x4C, 0x89, 0x55, 0xD8,  // mov [rbp-40], r10
                             0x4C, 0x8B, 0x55, 0xD8,  // mov r10, [rbp-40]
                             0x41, 0xFF, 0xD2});      // call r10
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "stray target laundered through a spill slot");
  }
  {
    // Arithmetic laundering: `add r10, 0x10` must not turn the stray
    // immediate into an admissible Computed value.
    std::vector<std::uint8_t> Body = {0x49, 0xBA};
    appendU64(Body, 0x4141414141414141ull);
    Body.insert(Body.end(), {0x49, 0x83, 0xC2, 0x10,  // add r10, 16
                             0x41, 0xFF, 0xD2});      // call r10
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "stray target laundered through add-immediate");
  }
  {
    // The same through register-register arithmetic.
    std::vector<std::uint8_t> Body = {0x49, 0xBA};
    appendU64(Body, 0x4141414141414141ull);
    Body.insert(Body.end(), {0x33, 0xC0,        // xor eax, eax
                             0x49, 0x03, 0xC2,  // add rax, r10
                             0xFF, 0xD0});      // call rax
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "stray target laundered through add rax, r10");
  }
  {
    // The same through a shift.
    std::vector<std::uint8_t> Body = {0x49, 0xBA};
    appendU64(Body, 0x4141414141414141ull << 1);
    Body.insert(Body.end(), {0x49, 0xC1, 0xEA, 0x01,  // shr r10, 1
                             0x41, 0xFF, 0xD2});      // call r10
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "stray target laundered through a shift");
  }
  {
    // The same through an xmm round trip (movq preserves all 64 bits).
    std::vector<std::uint8_t> Body = {0x48, 0xB8};
    appendU64(Body, 0x4141414141414141ull);
    Body.insert(Body.end(), {0x66, 0x48, 0x0F, 0x6E, 0xC0,  // movq xmm0, rax
                             0x66, 0x48, 0x0F, 0x7E, 0xC0,  // movq rax, xmm0
                             0xFF, 0xD0});                  // call rax
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "stray target laundered through the xmm file");
  }
  {
    // A target assembled from imm32 pieces with shift+or: the immediate
    // contribution keeps every piece Plain.
    std::vector<std::uint8_t> Body = {
        0xB8, 0xEF, 0xBE, 0xAD, 0xDE,  // mov eax, 0xDEADBEEF
        0xBA, 0x41, 0x41, 0x41, 0x41,  // mov edx, 0x41414141
        0x48, 0xC1, 0xE2, 0x20,        // shl rdx, 32
        0x48, 0x0B, 0xC2,              // or rax, rdx
        0xFF, 0xD0};                   // call rax
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "call target assembled from imm32 pieces");
  }
  {
    // A target assembled inside a qword spill slot by two dword stores,
    // then reloaded whole: the frame cells track partial-width writes.
    std::vector<std::uint8_t> Body = {
        0xB8, 0xEF, 0xBE, 0xAD, 0xDE,  // mov eax, 0xDEADBEEF
        0x89, 0x45, 0xD0,              // mov [rbp-48], eax
        0xB8, 0x41, 0x41, 0x41, 0x41,  // mov eax, 0x41414141
        0x89, 0x45, 0xD4,              // mov [rbp-44], eax
        0x48, 0x8B, 0x45, 0xD0,        // mov rax, [rbp-48]
        0xFF, 0xD0};                   // call rax
    AdmitProgram P = AdmitProgram::hand(handFrame(Body));
    P.HaveRelocs = true;
    runAdmitCase(T, P, "call-target", admitNoop,
                 "call target assembled by partial stores in a spill slot");
  }
  {
    // A Profile-kind slot used as a call target: the counter address the
    // loader planted is data, not code.
    AdmitProgram P = AdmitProgram::hand(handFrame(callBody()));
    P.HaveRelocs = true;
    P.Relocs.push_back(
        {13, static_cast<std::uint8_t>(support::RelocKind::Profile)});
    runAdmitCase(T, P, "call-target", admitNoop,
                 "profile-counter slot used as a call target");
  }
  {
    // Reloc offset pointing at the prologue, not a movabs payload.
    AdmitProgram P = AdmitProgram::hand(handFrame(callBody()));
    P.HaveRelocs = true;
    P.Relocs.push_back(
        {0, static_cast<std::uint8_t>(support::RelocKind::Callee)});
    runAdmitCase(T, P, "reloc-shape", admitNoop,
                 "reloc offset lands on the prologue");
  }
  {
    // Reloc offset off by one from the payload: patching would rewrite the
    // call's ModRM byte.
    AdmitProgram P = AdmitProgram::hand(handFrame(callBody()));
    P.HaveRelocs = true;
    P.Relocs.push_back(
        {14, static_cast<std::uint8_t>(support::RelocKind::Callee)});
    runAdmitCase(T, P, "reloc-shape", admitNoop,
                 "reloc offset off by one from the movabs payload");
  }

  // --- Compiled-body mutation sweeps ----------------------------------------
  struct Cfg {
    const char *Name;
    BackendKind BK;
  } Cfgs[] = {{"vcode", BackendKind::VCode},
              {"pcode", BackendKind::PCode},
              {"icode", BackendKind::ICode}};
  for (const Cfg &Cf : Cfgs) {
    CompileOptions Opts;
    Opts.Backend = Cf.BK;
    std::vector<std::pair<std::string, AdmitProgram>> Bodies;
    Bodies.emplace_back(std::string(Cf.Name) + "/loop",
                        AdmitProgram::of(compileLoopFn(Opts), nullptr));
    Bodies.emplace_back(std::string(Cf.Name) + "/call",
                        AdmitProgram::of(compileCallFn(Opts), nullptr));
    for (const auto &[Name, P] : Bodies) {
      // Sanity: the untouched body is admitted.
      verify::Result Clean = verify::verifyAdmission(P.inputs());
      ASSERT_TRUE(Clean.ok()) << Name << ":\n" << Clean.render();

      // Retarget every relative branch far outside the region, then into
      // the middle of the frame-reserve instruction.
      for (std::size_t I = 0; I < P.Ins.size(); ++I) {
        if (P.Ins[I].Cls != x86::InstrClass::Jcc &&
            P.Ins[I].Cls != x86::InstrClass::Jmp)
          continue;
        std::size_t RelOff = P.Starts[I] + P.Ins[I].Len - 4;
        runAdmitCase(T, P, "branch-target",
                     [RelOff](AdmitProgram &M) {
                       M.Bytes[RelOff] = 0x00;
                       M.Bytes[RelOff + 1] = 0x00;
                       M.Bytes[RelOff + 2] = 0x10;
                       M.Bytes[RelOff + 3] = 0x00;
                     },
                     Name + ": branch retargeted out of region @+" +
                         std::to_string(P.Starts[I]));
        std::size_t End = P.Starts[I] + P.Ins[I].Len;
        std::int32_t Rel =
            static_cast<std::int32_t>(P.Starts[2] + 1) -
            static_cast<std::int32_t>(End);
        runAdmitCase(T, P, "branch-target",
                     [RelOff, Rel](AdmitProgram &M) {
                       std::memcpy(&M.Bytes[RelOff], &Rel, 4);
                     },
                     Name + ": branch retargeted mid-instruction @+" +
                         std::to_string(P.Starts[I]));
        break; // One branch per body keeps the sweep bounded.
      }

      // Smash the final ret.
      if (!P.Ins.empty() && P.Ins.back().Cls == x86::InstrClass::Ret)
        runAdmitCase(T, P, "cfg-fallthrough",
                     [](AdmitProgram &M) { M.Bytes.back() = 0x90; },
                     Name + ": final ret smashed to nop");

      // Epilogue pops rbx instead of rbp.
      for (std::size_t I = 0; I < P.Ins.size(); ++I) {
        if (P.Ins[I].Cls != x86::InstrClass::Pop || P.Ins[I].Rm != 5)
          continue;
        std::size_t Off = P.Starts[I];
        runAdmitCase(T, P, "stack-balance",
                     [Off](AdmitProgram &M) { M.Bytes[Off] = 0x5B; },
                     Name + ": pop rbp flipped to pop rbx @+" +
                         std::to_string(Off));
        break;
      }

      // An undecodable opcode in the middle of the stream.
      {
        std::size_t Off = P.Starts[P.Starts.size() / 2];
        runAdmitCase(T, P, "decode",
                     [Off](AdmitProgram &M) { M.Bytes[Off] = 0x06; },
                     Name + ": opcode smashed @+" + std::to_string(Off));
      }

      // Flip an indirect call into an indirect jump (ModRM /2 -> /4).
      for (std::size_t I = 0; I < P.Ins.size(); ++I) {
        if (P.Ins[I].Cls != x86::InstrClass::CallInd)
          continue;
        std::size_t Off = P.Starts[I] + P.Ins[I].Len - 1;
        runAdmitCase(
            T, P, "branch-target",
            [Off](AdmitProgram &M) {
              M.Bytes[Off] =
                  static_cast<std::uint8_t>((M.Bytes[Off] & ~0x38u) | 0x20u);
            },
            Name + ": call flipped to indirect jump @+" + std::to_string(Off));
        break;
      }
    }
  }

  // --- Profile hooks ---------------------------------------------------------
  {
    CompileOptions ProfOpts;
    ProfOpts.Backend = BackendKind::ICode;
    ProfOpts.Profile = true;
    ProfOpts.ProfileName = "admit-prof";
    CompiledFn ProfFn = compileLoopFn(ProfOpts); // Outlives its counter uses.
    AdmitProgram PP = AdmitProgram::of(ProfFn, nullptr);
    runAdmitCase(T, PP, "profile",
                 [](AdmitProgram &M) { M.Profiled = false; },
                 "profiling hook present but unexpected");
    static std::uint64_t Decoy = 0;
    runAdmitCase(T, PP, "profile",
                 [](AdmitProgram &M) { M.Counter = &Decoy; },
                 "hook targets an unregistered counter");
    AdmitProgram NP = AdmitProgram::hand(handFrame({}));
    runAdmitCase(T, NP, "profile",
                 [](AdmitProgram &M) {
                   M.Profiled = true;
                   M.Counter = &Decoy;
                 },
                 "profiling expected but no hook planted");
  }

  EXPECT_GE(T.Cases, 40u);
  EXPECT_EQ(T.Rejected, T.Cases) << "some hostile records were admitted";
}

TEST(VerifyAdmission, AcceptsCleanCompilesAllBackends) {
  obs::MetricsSnapshot Before = obs::MetricsRegistry::global().snapshot();
  bench::AppSet Apps;
  const BackendKind Backends[] = {BackendKind::VCode, BackendKind::PCode,
                                  BackendKind::ICode};
  unsigned Compiled = 0;
  for (BackendKind BK : Backends) {
    for (const bench::AppCase &App : Apps.cases()) {
      support::RelocTable RT;
      CompileOptions Opts;
      Opts.Backend = BK;
      Opts.Verify = true; // The in-pipeline admission gate runs here.
      Opts.Relocs = &RT;
      CompiledFn F = App.Specialize(Opts);
      ASSERT_TRUE(F.valid()) << App.Name;
      App.RunDynamic(F.entry());
      // Re-admit the finalized bytes exactly as a snapshot load would: with
      // the recorded relocation table as the trusted side channel.
      AdmitProgram P = AdmitProgram::of(F, &RT);
      verify::Result R = verify::verifyAdmission(P.inputs());
      EXPECT_TRUE(R.ok()) << App.Name << " (" << static_cast<int>(BK)
                          << "):\n"
                          << R.render();
      ++Compiled;
    }
  }
  obs::MetricsSnapshot After = obs::MetricsRegistry::global().snapshot();
  namespace N = obs::names;
  EXPECT_EQ(After.counter(N::VerifyAdmitFailed),
            Before.counter(N::VerifyAdmitFailed));
  EXPECT_GE(After.counter(N::VerifyAdmitChecked),
            Before.counter(N::VerifyAdmitChecked) + Compiled);
  EXPECT_GT(After.counter(N::VerifyAdmitBlocks),
            Before.counter(N::VerifyAdmitBlocks));
}

TEST(VerifyAdmission, RejectionArtifactSample) {
  // CI sets TICKC_ADMIT_SAMPLE to collect one full rejection report (hex
  // window + CFG + abstract-state dump) as a build artifact; without the
  // variable this is a no-op.
  const char *Path = std::getenv("TICKC_ADMIT_SAMPLE");
  if (!Path || !*Path)
    GTEST_SKIP() << "TICKC_ADMIT_SAMPLE not set";
  AdmitProgram P =
      AdmitProgram::hand(handFrame({0xE9, 0xF0, 0xFF, 0xFF, 0xFF}));
  verify::Result R = verify::verifyAdmission(P.inputs());
  ASSERT_FALSE(R.ok());
  std::FILE *F = std::fopen(Path, "w");
  ASSERT_NE(F, nullptr);
  std::string Report = R.render();
  std::fwrite(Report.data(), 1, Report.size(), F);
  std::fclose(F);
}
