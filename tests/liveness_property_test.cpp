//===- tests/liveness_property_test.cpp - Bitset vs reference liveness ----==//
//
// Property test for the packed word-at-a-time liveness solver: on randomly
// generated flow graphs, its LiveIn/LiveOut must be bit-identical to the
// original BitVector-based relaxation (solveLivenessReference, compiled in
// under TICKC_CHECK_LIVENESS). Both run to the unique least fixpoint of the
// same dataflow equations, so any disagreement is a word-packing or
// iteration bug in the fast path.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"
#include "icode/ICode.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace tcc;
using namespace tcc::icode;

#ifdef TICKC_CHECK_LIVENESS

namespace {

/// Builds a random program: NumBlocks straight-line regions over NumVregs
/// registers, stitched together with random conditional branches, jumps,
/// and fall-throughs (including back edges — loops — and unreachable
/// blocks, both of which the solver must handle).
ICode makeRandomProgram(std::mt19937 &Rng, unsigned NumBlocks,
                        unsigned NumVregs) {
  ICode IC;
  std::vector<VReg> Regs;
  for (unsigned R = 0; R < NumVregs; ++R)
    Regs.push_back(IC.newIntReg());
  // Seed every register so the entry block dominates no accidental
  // use-before-def (liveness itself doesn't care, but it keeps the
  // programs shaped like real CGF output).
  for (VReg R : Regs)
    IC.setI(R, 1);

  std::vector<ILabel> Labels;
  for (unsigned B = 0; B < NumBlocks; ++B)
    Labels.push_back(IC.newLabel());

  auto RandReg = [&] { return Regs[Rng() % Regs.size()]; };
  for (unsigned B = 0; B < NumBlocks; ++B) {
    IC.bindLabel(Labels[B]);
    unsigned Len = Rng() % 6;
    for (unsigned I = 0; I < Len; ++I) {
      switch (Rng() % 3) {
      case 0:
        IC.setI(RandReg(), static_cast<std::int32_t>(Rng() % 100));
        break;
      case 1:
        IC.addI(RandReg(), RandReg(), RandReg());
        break;
      default:
        IC.movI(RandReg(), RandReg());
        break;
      }
    }
    ILabel Target = Labels[Rng() % NumBlocks]; // Any block: loops allowed.
    switch (B + 1 == NumBlocks ? 0u : Rng() % 4) {
    case 0:
      IC.retI(RandReg());
      break;
    case 1:
      IC.jump(Target);
      break;
    case 2:
      IC.brCmpI(vcode::CmpKind::LtS, RandReg(), RandReg(), Target);
      break;
    default:
      break; // Fall through to the next block.
    }
  }
  return IC;
}

} // namespace

TEST(LivenessProperty, BitsetMatchesReferenceOnRandomFlowGraphs) {
  std::mt19937 Rng(20260806);
  for (int Trial = 0; Trial < 50; ++Trial) {
    unsigned NumBlocks = 2 + Rng() % 12;
    // Straddle the 64-register word boundary in about half the trials so
    // multi-word sets are exercised.
    unsigned NumVregs = 3 + Rng() % (Trial % 2 ? 40 : 150);
    ICode IC = makeRandomProgram(Rng, NumBlocks, NumVregs);

    FlowGraph FG;
    FG.build(IC);
    FG.solveLiveness(IC);

    std::vector<BitVector> RefIn, RefOut;
    solveLivenessReference(IC, FG, RefIn, RefOut);

    const auto &Blocks = FG.blocks();
    ASSERT_EQ(Blocks.size(), RefIn.size());
    for (std::size_t B = 0; B < Blocks.size(); ++B) {
      for (unsigned R = 0; R < IC.numRegs(); ++R) {
        ASSERT_EQ(Blocks[B].LiveIn.test(R), RefIn[B].test(R))
            << "trial " << Trial << " block " << B << " LiveIn vreg " << R;
        ASSERT_EQ(Blocks[B].LiveOut.test(R), RefOut[B].test(R))
            << "trial " << Trial << " block " << B << " LiveOut vreg " << R;
      }
    }
  }
}

TEST(LivenessProperty, BitsetMatchesReferenceOnLoopProgram) {
  // A deterministic loop-carried program (the shape the random generator
  // may or may not hit): i and acc must be live around the back edge in
  // both solvers.
  ICode IC;
  VReg N = IC.newIntReg(), I = IC.newIntReg(), Acc = IC.newIntReg();
  IC.bindArgI(0, N);
  IC.setI(I, 0);
  IC.setI(Acc, 0);
  ILabel Head = IC.newLabel(), Done = IC.newLabel();
  IC.bindLabel(Head);
  IC.brCmpI(vcode::CmpKind::GeS, I, N, Done);
  IC.addI(Acc, Acc, I);
  IC.addII(I, I, 1);
  IC.jump(Head);
  IC.bindLabel(Done);
  IC.retI(Acc);

  FlowGraph FG;
  FG.build(IC);
  FG.solveLiveness(IC);
  std::vector<BitVector> RefIn, RefOut;
  solveLivenessReference(IC, FG, RefIn, RefOut);
  const auto &Blocks = FG.blocks();
  for (std::size_t B = 0; B < Blocks.size(); ++B)
    for (unsigned R = 0; R < IC.numRegs(); ++R) {
      EXPECT_EQ(Blocks[B].LiveIn.test(R), RefIn[B].test(R));
      EXPECT_EQ(Blocks[B].LiveOut.test(R), RefOut[B].test(R));
    }
}

#else // !TICKC_CHECK_LIVENESS

TEST(LivenessProperty, OracleCompiledOut) {
  GTEST_SKIP() << "built with TICKC_CHECK_LIVENESS=OFF";
}

#endif
