//===- tests/icode_test.cpp - ICODE back end tests ------------------------===//
//
// End-to-end compilation through both register allocators, plus direct
// tests of the flow graph, liveness, live intervals, and the allocators'
// invariants.
//
//===----------------------------------------------------------------------===//

#include "icode/Analysis.h"
#include "icode/ICode.h"

#include "support/CodeBuffer.h"

#include <gtest/gtest.h>

#include <random>

using namespace tcc;
using namespace tcc::icode;

namespace {

/// Compiles an ICode buffer and returns a callable entry point.
class IJit {
public:
  explicit IJit(std::size_t Cap = 1 << 18)
      : Region(Cap, CodePlacement::Sequential), V(Region.base(), Cap) {}

  template <typename FnT>
  FnT *compile(ICode &IC, RegAllocKind Kind, CompileStats *Stats = nullptr) {
    void *Entry = IC.compileTo(V, Kind, Stats);
    Region.makeExecutable();
    return reinterpret_cast<FnT *>(Entry);
  }

  CodeRegion Region;
  vcode::VCode V;
};

class ICodeBothAllocs : public ::testing::TestWithParam<RegAllocKind> {};

INSTANTIATE_TEST_SUITE_P(Allocators, ICodeBothAllocs,
                         ::testing::Values(RegAllocKind::LinearScan,
                                           RegAllocKind::GraphColor),
                         [](const auto &Info) {
                           return Info.param == RegAllocKind::LinearScan
                                      ? "LinearScan"
                                      : "GraphColor";
                         });

TEST_P(ICodeBothAllocs, StraightLineArith) {
  ICode IC;
  VReg A = IC.newIntReg(), B = IC.newIntReg();
  IC.bindArgI(0, A);
  IC.bindArgI(1, B);
  VReg T1 = IC.newIntReg(), T2 = IC.newIntReg(), T3 = IC.newIntReg();
  IC.addI(T1, A, B);  // a+b
  IC.mulI(T2, T1, A); // (a+b)*a
  IC.subII(T3, T2, 7);
  IC.retI(T3);
  IJit J;
  auto *Fn = J.compile<int(int, int)>(IC, GetParam());
  EXPECT_EQ(Fn(3, 4), (3 + 4) * 3 - 7);
  EXPECT_EQ(Fn(-2, 10), (-2 + 10) * -2 - 7);
}

TEST_P(ICodeBothAllocs, LoopSum) {
  // s = 0; for (i = 0; i < n; ++i) s += i*i; return s;
  ICode IC;
  VReg N = IC.newIntReg();
  IC.bindArgI(0, N);
  VReg I = IC.newIntReg(), S = IC.newIntReg(), T = IC.newIntReg();
  IC.setI(I, 0);
  IC.setI(S, 0);
  ILabel Head = IC.newLabel(), Done = IC.newLabel();
  IC.bindLabel(Head);
  IC.brCmpI(CmpKind::GeS, I, N, Done);
  IC.hint(+1);
  IC.mulI(T, I, I);
  IC.addI(S, S, T);
  IC.addII(I, I, 1);
  IC.hint(-1);
  IC.jump(Head);
  IC.bindLabel(Done);
  IC.retI(S);
  IJit J;
  CompileStats Stats;
  auto *Fn = J.compile<int(int)>(IC, GetParam(), &Stats);
  EXPECT_EQ(Fn(0), 0);
  EXPECT_EQ(Fn(5), 0 + 1 + 4 + 9 + 16);
  int Want = 0;
  for (int K = 0; K < 100; ++K)
    Want += K * K;
  EXPECT_EQ(Fn(100), Want);
  EXPECT_GE(Stats.NumBasicBlocks, 3u);
  EXPECT_GT(Stats.NumMachineInstrs, 0u);
}

TEST_P(ICodeBothAllocs, HighPressureSpills) {
  // Materialize many simultaneously live values so spilling must happen,
  // then combine them; result must still be correct.
  ICode IC;
  constexpr int N = 24; // far more than the 5 integer pool registers
  std::vector<VReg> Regs;
  for (int K = 0; K < N; ++K) {
    VReg R = IC.newIntReg();
    IC.setI(R, (K + 1) * 3);
    Regs.push_back(R);
  }
  VReg Sum = IC.newIntReg();
  IC.setI(Sum, 0);
  for (int K = 0; K < N; ++K)
    IC.addI(Sum, Sum, Regs[K]);
  IC.retI(Sum);
  IJit J;
  CompileStats Stats;
  auto *Fn = J.compile<int()>(IC, GetParam(), &Stats);
  EXPECT_EQ(Fn(), 3 * N * (N + 1) / 2);
  EXPECT_GT(Stats.NumSpilledIntervals, 0u)
      << "this much pressure must spill on a 5-register pool";
}

TEST_P(ICodeBothAllocs, DoubleLoop) {
  // Newton iteration-ish double kernel: x = x - (x*x - a) / (2x), 20 times.
  ICode IC;
  VReg A = IC.newFloatReg();
  IC.bindArgD(0, A);
  VReg X = IC.newFloatReg(), T = IC.newFloatReg(), Num = IC.newFloatReg(),
       Den = IC.newFloatReg(), Two = IC.newFloatReg();
  VReg I = IC.newIntReg();
  IC.movD(X, A);
  IC.setD(Two, 2.0);
  IC.setI(I, 0);
  ILabel Head = IC.newLabel(), Done = IC.newLabel();
  IC.bindLabel(Head);
  IC.brCmpII(CmpKind::GeS, I, 20, Done);
  IC.hint(+1);
  IC.mulD(T, X, X);
  IC.subD(Num, T, A);
  IC.mulD(Den, Two, X);
  IC.divD(Num, Num, Den);
  IC.subD(X, X, Num);
  IC.addII(I, I, 1);
  IC.hint(-1);
  IC.jump(Head);
  IC.bindLabel(Done);
  IC.retD(X);
  IJit J;
  auto *Fn = J.compile<double(double)>(IC, GetParam());
  EXPECT_NEAR(Fn(9.0), 3.0, 1e-9);
  EXPECT_NEAR(Fn(2.0), std::sqrt(2.0), 1e-9);
}

TEST_P(ICodeBothAllocs, MemoryAndCalls) {
  // return helper(p[0], p[1]) + p[2]
  ICode IC;
  VReg P = IC.newIntReg();
  IC.bindArgI(0, P);
  VReg A = IC.newIntReg(), B = IC.newIntReg(), C = IC.newIntReg();
  IC.ldI(A, P, 0);
  IC.ldI(B, P, 4);
  IC.ldI(C, P, 8);
  IC.prepareCallArgI(0, A);
  IC.prepareCallArgI(1, B);
  auto Helper = +[](int X, int Y) { return X * Y; };
  IC.emitCall(reinterpret_cast<const void *>(Helper));
  VReg R = IC.newIntReg();
  IC.resultToI(R);
  IC.addI(R, R, C);
  IC.retI(R);
  IJit J;
  auto *Fn = J.compile<int(const int *)>(IC, GetParam());
  int Data[3] = {6, 7, 100};
  EXPECT_EQ(Fn(Data), 142);
}

TEST_P(ICodeBothAllocs, RandomExpressionTrees) {
  // Property test: generated code over random DAGs of int ops must match a
  // host-computed reference (division avoided to dodge UB).
  std::mt19937 Rng(12345);
  for (int Trial = 0; Trial < 30; ++Trial) {
    ICode IC;
    VReg A0 = IC.newIntReg(), A1 = IC.newIntReg();
    IC.bindArgI(0, A0);
    IC.bindArgI(1, A1);
    std::vector<VReg> Vals = {A0, A1};
    int X = 17, Y = -9; // concrete arguments
    std::vector<long long> Ref = {X, Y};

    auto Wrap = [](long long V) {
      return static_cast<long long>(static_cast<std::int32_t>(V));
    };
    int Steps = 3 + static_cast<int>(Rng() % 20);
    for (int S = 0; S < Steps; ++S) {
      unsigned OpSel = Rng() % 5;
      std::size_t I1 = Rng() % Vals.size(), I2 = Rng() % Vals.size();
      VReg D = IC.newIntReg();
      long long R;
      switch (OpSel) {
      case 0:
        IC.addI(D, Vals[I1], Vals[I2]);
        R = Wrap(Ref[I1] + Ref[I2]);
        break;
      case 1:
        IC.subI(D, Vals[I1], Vals[I2]);
        R = Wrap(Ref[I1] - Ref[I2]);
        break;
      case 2:
        IC.mulI(D, Vals[I1], Vals[I2]);
        R = Wrap(static_cast<std::int64_t>(Ref[I1]) * Ref[I2]);
        break;
      case 3:
        IC.xorI(D, Vals[I1], Vals[I2]);
        R = Wrap(Ref[I1] ^ Ref[I2]);
        break;
      default:
        IC.andII(D, Vals[I1], 0x7FFF);
        R = Wrap(Ref[I1] & 0x7FFF);
        break;
      }
      Vals.push_back(D);
      Ref.push_back(R);
    }
    IC.retI(Vals.back());
    IJit J;
    auto *Fn = J.compile<int(int, int)>(IC, GetParam());
    EXPECT_EQ(Fn(X, Y), static_cast<int>(Ref.back())) << "trial " << Trial;
  }
}

// --- Analysis-level tests -------------------------------------------------------

/// Small diamond: entry -> (then | else) -> join.
ICode makeDiamond() {
  ICode IC;
  VReg A = IC.newIntReg();
  IC.bindArgI(0, A);
  VReg R = IC.newIntReg();
  ILabel Else = IC.newLabel(), Join = IC.newLabel();
  IC.brCmpII(CmpKind::LeS, A, 0, Else);
  IC.setI(R, 1);
  IC.jump(Join);
  IC.bindLabel(Else);
  IC.setI(R, 2);
  IC.bindLabel(Join);
  IC.addI(R, R, A);
  IC.retI(R);
  return IC;
}

TEST(FlowGraphTest, DiamondShape) {
  ICode IC = makeDiamond();
  FlowGraph FG;
  FG.build(IC);
  ASSERT_EQ(FG.blocks().size(), 4u);
  // Entry has two successors.
  const BasicBlock &Entry = FG.blocks()[0];
  EXPECT_GE(Entry.Succ[0], 0);
  EXPECT_GE(Entry.Succ[1], 0);
  // Then-block jumps to join (one successor).
  const BasicBlock &Then = FG.blocks()[1];
  EXPECT_GE(Then.Succ[0], 0);
  EXPECT_EQ(Then.Succ[1], -1);
}

TEST(FlowGraphTest, LivenessThroughDiamond) {
  ICode IC = makeDiamond();
  FlowGraph FG;
  FG.build(IC);
  unsigned Iters = FG.solveLiveness(IC);
  EXPECT_GE(Iters, 1u);
  // A (vreg 0) is used in the join block, so it must be live out of the
  // entry block and live into both arms.
  const BasicBlock &Entry = FG.blocks()[0];
  EXPECT_TRUE(Entry.LiveOut.test(0));
  EXPECT_TRUE(FG.blocks()[1].LiveIn.test(0));
  EXPECT_TRUE(FG.blocks()[2].LiveIn.test(0));
}

TEST(LiveIntervalsTest, LoopCarriedSpansLoop) {
  // i and s must both span the whole loop body.
  ICode IC;
  VReg N = IC.newIntReg();
  IC.bindArgI(0, N);
  VReg I = IC.newIntReg(), S = IC.newIntReg();
  IC.setI(I, 0);
  IC.setI(S, 0);
  ILabel Head = IC.newLabel(), Done = IC.newLabel();
  IC.bindLabel(Head);
  IC.brCmpI(CmpKind::GeS, I, N, Done);
  IC.addI(S, S, I);
  IC.addII(I, I, 1);
  IC.jump(Head);
  IC.bindLabel(Done);
  IC.retI(S);

  FlowGraph FG;
  FG.build(IC);
  FG.solveLiveness(IC);
  auto Intervals = buildLiveIntervals(IC, FG);

  auto JumpIdx = static_cast<std::int32_t>(IC.instrs().size()) - 3;
  ASSERT_EQ(IC.instrs()[JumpIdx].Opcode, Op::Jump);
  for (const Interval &IV : Intervals) {
    if (IV.Reg != I && IV.Reg != S)
      continue;
    EXPECT_GE(IV.End, JumpIdx) << "loop-carried interval must reach the "
                                  "back edge (vreg "
                               << IV.Reg << ")";
  }
  // Sorted by end point.
  for (std::size_t K = 1; K < Intervals.size(); ++K)
    EXPECT_LE(Intervals[K - 1].End, Intervals[K].End);
}

TEST(LinearScanTest, NoOverlapSharesRegister) {
  // Invariant check on random interval sets: two intervals assigned the
  // same register must not overlap.
  std::mt19937 Rng(99);
  for (int Trial = 0; Trial < 50; ++Trial) {
    // Build a fake ICode with the right number of int vregs.
    ICode IC;
    int N = 5 + static_cast<int>(Rng() % 40);
    ArenaVector<Interval> Ivs(IC.arena());
    for (int K = 0; K < N; ++K) {
      Interval IV;
      IV.Reg = IC.newIntReg();
      IV.Start = static_cast<std::int32_t>(Rng() % 100);
      IV.End = IV.Start + static_cast<std::int32_t>(Rng() % 30);
      IV.Weight = Rng() % 1000;
      Ivs.push_back(IV);
    }
    std::sort(Ivs.begin(), Ivs.end(), [](const auto &A, const auto &B) {
      return A.End < B.End;
    });
    Allocation Alloc = allocateLinearScan(IC, Ivs, 4, 4,
                                          SpillHeuristic::LongestInterval, {});
    for (std::size_t A = 0; A < Ivs.size(); ++A)
      for (std::size_t B = A + 1; B < Ivs.size(); ++B) {
        int La = Alloc.Location[Ivs[A].Reg];
        int Lb = Alloc.Location[Ivs[B].Reg];
        if (La < 0 || Lb < 0 || La != Lb)
          continue;
        bool Overlap =
            Ivs[A].Start <= Ivs[B].End && Ivs[B].Start <= Ivs[A].End;
        EXPECT_FALSE(Overlap)
            << "intervals " << A << " and " << B << " share register " << La;
      }
  }
}

TEST(LinearScanTest, NoSpillWhenPressureFits) {
  ICode IC;
  ArenaVector<Interval> Ivs(IC.arena());
  // Four pairwise-overlapping intervals, four registers: zero spills.
  for (int K = 0; K < 4; ++K) {
    Interval IV;
    IV.Reg = IC.newIntReg();
    IV.Start = K;
    IV.End = 10 + K;
    Ivs.push_back(IV);
  }
  Allocation Alloc =
      allocateLinearScan(IC, Ivs, 4, 4, SpillHeuristic::LongestInterval, {});
  EXPECT_EQ(Alloc.NumSpilled, 0u);
}

TEST(LinearScanTest, SpillsLongestUnderPressure) {
  ICode IC;
  ArenaVector<Interval> Ivs(IC.arena());
  // One long interval plus three short ones overlapping it, two registers:
  // the long interval should be the victim (paper's heuristic).
  Interval Long;
  Long.Reg = IC.newIntReg();
  Long.Start = 0;
  Long.End = 100;
  Ivs.push_back(Long);
  // Three mutually overlapping short intervals inside the long one: at
  // point 14 all four are live, so two of them must go to memory.
  for (int K = 0; K < 3; ++K) {
    Interval IV;
    IV.Reg = IC.newIntReg();
    IV.Start = 10 + 2 * K;
    IV.End = 15 + 3 * K;
    Ivs.push_back(IV);
  }
  std::sort(Ivs.begin(), Ivs.end(),
            [](const auto &A, const auto &B) { return A.End < B.End; });
  Allocation Alloc =
      allocateLinearScan(IC, Ivs, 2, 2, SpillHeuristic::LongestInterval, {});
  EXPECT_EQ(Alloc.Location[0], Allocation::Spilled)
      << "the longest interval should be among the evicted";
  EXPECT_EQ(Alloc.NumSpilled, 2u);
}

TEST(GraphColorTest, ColoringRespectsInterference) {
  // Compile a real function and check pairwise: same color => disjoint
  // per-instruction liveness is implied by correctness tests; here we just
  // sanity-check the diamond allocates without spills.
  ICode IC = makeDiamond();
  FlowGraph FG;
  FG.build(IC);
  FG.solveLiveness(IC);
  Allocation Alloc =
      allocateGraphColor(IC, FG, 5, 12, SpillHeuristic::LongestInterval, {});
  EXPECT_EQ(Alloc.NumSpilled, 0u);
  EXPECT_GE(Alloc.Location[0], 0);
  EXPECT_GE(Alloc.Location[1], 0);
}

TEST(PeepholeTest, DeadCodeEliminated) {
  ICode IC;
  VReg A = IC.newIntReg();
  IC.bindArgI(0, A);
  VReg Dead1 = IC.newIntReg(), Dead2 = IC.newIntReg();
  IC.setI(Dead1, 99);
  IC.mulI(Dead2, Dead1, Dead1); // chain of dead computations
  VReg R = IC.newIntReg();
  IC.addII(R, A, 1);
  IC.retI(R);
  IJit J;
  CompileStats Stats;
  auto *Fn = J.compile<int(int)>(IC, RegAllocKind::LinearScan, &Stats);
  EXPECT_EQ(Fn(41), 42);
  // Both dead instructions must be gone from the IR count.
  EXPECT_EQ(Stats.NumIRInstrs, 3u) << "bindarg + addII + ret survive";
}

TEST(PeepholeTest, DivisionIsNotErased) {
  std::vector<Instr> Instrs;
  Instrs.push_back(Instr{Op::DivI, 0, 2, 0, 1});
  unsigned Erased = eliminateDeadCode(Instrs, 3);
  EXPECT_EQ(Erased, 0u) << "division may trap and must survive DCE";
}

TEST(EmitterUsageTest, TracksAndPrunes) {
  EmitterUsage U;
  EXPECT_EQ(U.usedOpcodes(), 0u);
  U.noteUse(Op::AddI);
  U.noteUse(Op::AddI);
  U.noteUse(Op::RetI);
  EXPECT_EQ(U.usedOpcodes(), 2u);
  EXPECT_TRUE(U.isUsed(Op::AddI));
  EXPECT_FALSE(U.isUsed(Op::MulD));
  EXPECT_LT(U.retainedHandlerInstrs(), EmitterUsage::fullHandlerInstrs());
}

TEST(ICodeStats, PhaseCyclesPopulated) {
  ICode IC;
  VReg A = IC.newIntReg();
  IC.bindArgI(0, A);
  VReg R = IC.newIntReg();
  IC.mulII(R, A, 3);
  IC.retI(R);
  IJit J;
  CompileStats Stats;
  auto *Fn = J.compile<int(int)>(IC, RegAllocKind::LinearScan, &Stats);
  EXPECT_EQ(Fn(7), 21);
  EXPECT_GT(Stats.CyclesRegAlloc, 0u);
  EXPECT_GT(Stats.CyclesEmit, 0u);
  EXPECT_GT(Stats.NumMachineInstrs, 0u);
}

} // namespace
