//===- tests/tier_test.cpp - Tiered compilation tests ---------------------===//
//
// Covers the VCODE-first / background-ICODE promotion path (src/tier):
// dispatch-slot correctness across the swap for every app adapter, slot
// memoization, uncacheable-spec tiering, queue-full backoff, shutdown with
// pending requests, and multi-threaded stress during promotion and under
// cache-eviction churn (run under -fsanitize=thread in CI).
//
//===----------------------------------------------------------------------===//

#include "apps/DotProduct.h"
#include "apps/Hash.h"
#include "apps/Marshal.h"
#include "apps/Power.h"
#include "apps/Query.h"
#include "cache/CompileService.h"
#include "tier/Tier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;
using namespace tcc::cache;
using namespace tcc::tier;

namespace {

TierConfig config(std::uint64_t Threshold, unsigned Workers = 1) {
  TierConfig TC;
  TC.Workers = Workers;
  TC.PromoteThreshold = Threshold;
  return TC;
}

/// Drives \p TF across the promotion threshold with \p Call until the swap
/// lands (or 10 s pass).
template <typename CallT> bool driveToPromotion(TieredFn &TF, CallT Call) {
  while (!TF.promoted()) {
    for (unsigned I = 0; I < 64; ++I)
      Call();
    if (TF.state() == TierState::Failed)
      return false;
    if (TF.invocations() > (1u << 20))
      return TF.waitPromoted();
  }
  return true;
}

// --- Per-app agreement across the swap --------------------------------------

TEST(Tier, QueryPromotesToICodeAndAgrees) {
  // Service before manager: slots hold handles into the service's cache.
  CompileService S;
  TierManager TM(config(32, 2));
  apps::QueryApp App(256);
  const apps::QueryNode *Q = App.benchmarkQuery();
  int Expected = App.countStaticO2(Q);

  TieredFnHandle TF = App.specializeTiered(Q, S, &TM);
  ASSERT_TRUE(TF);
  // With tier 0 on (the default) the slot is born interpreted; the baseline
  // swap may or may not have landed by the time we look.
  TierState St0 = TF->state();
  EXPECT_TRUE(St0 == TierState::Interpreted || St0 == TierState::Baseline)
      << static_cast<int>(St0);

  auto CountViaSlot = [&] {
    int N = 0;
    for (const apps::Record &R : App.records())
      N += TF->call<int(const apps::Record *)>(&R);
    return N;
  };
  // Baseline tier answers correctly before any promotion.
  EXPECT_EQ(CountViaSlot(), Expected);

  ASSERT_TRUE(driveToPromotion(*TF, CountViaSlot));
  EXPECT_EQ(TF->state(), TierState::Promoted);
  EXPECT_GT(TF->promoteLatencyNanos(), 0u);

  // The promoted tier is the ICODE body and still agrees.
  FnHandle H = TF->handle();
  ASSERT_TRUE(H);
  ASSERT_NE(H->profile(), nullptr);
  EXPECT_STREQ(H->profile()->Backend.load(), "icode");
  EXPECT_EQ(CountViaSlot(), Expected);
  EXPECT_EQ(App.countCompiled(H->as<int(const apps::Record *)>()), Expected);
}

TEST(Tier, PowerAgreesAcrossPromotion) {
  CompileService S;
  TierManager TM(config(16));
  apps::PowerApp P(13);
  TieredFnHandle TF = P.specializeTiered(S, &TM);
  ASSERT_TRUE(driveToPromotion(
      *TF, [&] { EXPECT_EQ(TF->call<int(int)>(3), P.powStaticO2(3)); }));
  EXPECT_EQ(TF->call<int(int)>(2), 8192);
  EXPECT_EQ(TF->call<int(int)>(-2), -8192);
}

TEST(Tier, HashAgreesAcrossPromotion) {
  CompileService S;
  TierManager TM(config(16));
  apps::HashApp H(256, 100, 3);
  TieredFnHandle TF = H.specializeTiered(S, &TM);
  ASSERT_TRUE(driveToPromotion(*TF, [&] {
    EXPECT_EQ(TF->call<int(int)>(H.presentKey()), H.presentKey() * 2 + 1);
  }));
  EXPECT_EQ(TF->call<int(int)>(H.presentKey()), H.presentKey() * 2 + 1);
  EXPECT_EQ(TF->call<int(int)>(H.absentKey()), -1);
}

static int sum5(int A, int B, int C, int D, int E) {
  return A + B * 10 + C * 100 + D * 1000 + E * 10000;
}

TEST(Tier, UnmarshalerAgreesAcrossPromotion) {
  CompileService S;
  TierManager TM(config(16));
  apps::MarshalApp M("iiiii");
  TieredFnHandle TF =
      M.buildUnmarshalerTiered(reinterpret_cast<const void *>(&sum5), S, &TM);
  std::uint8_t Buf[20];
  int Vals[5] = {1, 2, 3, 4, 5};
  std::memcpy(Buf, Vals, sizeof(Buf));
  ASSERT_TRUE(driveToPromotion(*TF, [&] {
    EXPECT_EQ(TF->call<int(const std::uint8_t *)>(Buf), 54321);
  }));
  EXPECT_EQ(TF->call<int(const std::uint8_t *)>(Buf), 54321);
}

TEST(Tier, UncacheableDotProductStillPromotes) {
  // The dp spec rtEval's the row at instantiation time, so neither tier is
  // memoizable — tiering must still work, just without slot/cache sharing.
  CompileService S;
  TierManager TM(config(16));
  apps::DotProductApp App(32, 0.5, 7);
  std::vector<int> Col(App.size());
  for (unsigned I = 0; I < App.size(); ++I)
    Col[I] = static_cast<int>(I) - 7;
  int Expected = App.dotStaticO2(Col.data());

  TieredFnHandle TF = App.specializeTiered(S, &TM);
  ASSERT_TRUE(driveToPromotion(*TF, [&] {
    EXPECT_EQ(TF->call<int(const int *)>(Col.data()), Expected);
  }));
  EXPECT_EQ(TF->call<int(const int *)>(Col.data()), Expected);
  // Nothing was memoized on either tier.
  EXPECT_EQ(S.cache().stats().Insertions, 0u);
}

// --- Slot memoization --------------------------------------------------------

TEST(Tier, RepeatedRequestsShareOneSlot) {
  CompileService S;
  TierManager TM(config(16));
  apps::PowerApp P(9);
  TieredFnHandle A = P.specializeTiered(S, &TM);
  TieredFnHandle B = P.specializeTiered(S, &TM);
  EXPECT_EQ(A.get(), B.get()); // One counter, one eventual promotion.

  ASSERT_TRUE(
      driveToPromotion(*A, [&] { (void)A->call<int(int)>(2); }));
  // A post-promotion request finds the already-promoted slot.
  TieredFnHandle C = P.specializeTiered(S, &TM);
  EXPECT_EQ(C.get(), A.get());
  EXPECT_TRUE(C->promoted());

  // A different spec gets its own slot.
  apps::PowerApp P2(11);
  EXPECT_NE(P2.specializeTiered(S, &TM).get(), A.get());
}

// --- Queue-full backoff ------------------------------------------------------

TEST(Tier, QueueFullBacksOffAndStaysOnBaseline) {
  TierConfig TC = config(4);
  TC.QueueCapacity = 0; // Every enqueue is rejected.
  CompileService S;
  TierManager TM(TC);
  apps::PowerApp P(13);
  TieredFnHandle TF = P.specializeTiered(S, &TM);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(TF->call<int(int)>(2), 8192);
  // Never promoted, never stuck in Queued: backoff re-arms the trigger.
  EXPECT_EQ(TF->state(), TierState::Baseline);
  EXPECT_GT(TF->invocations(), 4u);
}

// --- Shutdown ----------------------------------------------------------------

TEST(Tier, ShutdownWithPendingRequestsFailsThemCleanly) {
  CompileService S;
  apps::QueryApp App(64);
  std::vector<TieredFnHandle> Fns;
  {
    TierManager TM(config(1));
    for (unsigned E = 2; E < 12; ++E) {
      apps::PowerApp P(E);
      TieredFnHandle TF = P.specializeTiered(S, &TM);
      (void)TF->call<int(int)>(2); // Crosses threshold 1 -> enqueues.
      Fns.push_back(std::move(TF));
    }
  } // Joins workers; still-queued requests become Failed.
  for (TieredFnHandle &TF : Fns) {
    TierState St = TF->state();
    EXPECT_TRUE(St == TierState::Promoted || St == TierState::Failed ||
                St == TierState::Baseline)
        << static_cast<int>(St);
    EXPECT_NE(St, TierState::Queued);
    // Whatever tier survived, the slot still answers correctly. A slot
    // whose baseline compile died in the queue keeps interpreting and has
    // no handle — the call itself must still work.
    int X = TF->call<int(int)>(2);
    if (FnHandle H = TF->handle()) {
      EXPECT_EQ(H->as<int(int)>()(2), X);
    }
  }
}

// --- Concurrency -------------------------------------------------------------

TEST(Tier, ConcurrentCallersAcrossTheSwap) {
  CompileService S;
  TierManager TM(config(128, 2));
  apps::QueryApp App(64);
  const apps::QueryNode *Q = App.benchmarkQuery();
  std::vector<int> Expected;
  for (const apps::Record &R : App.records())
    Expected.push_back(apps::QueryApp::matchStatic(Q, &R));

  TieredFnHandle TF = App.specializeTiered(Q, S, &TM);
  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Failures{0};
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&] {
      // Keep calling through the slot while the swap happens underneath.
      for (unsigned Sweep = 0; Sweep < 400 && !Stop.load(); ++Sweep)
        for (std::size_t I = 0; I < App.records().size(); ++I)
          if (TF->call<int(const apps::Record *)>(&App.records()[I]) !=
              Expected[I])
            Failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  bool Promoted = TF->waitPromoted();
  Stop.store(true);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(Promoted);
  EXPECT_EQ(Failures.load(), 0u);
  // Every caller kept agreeing through the swap; and post-join the slot is
  // on the optimized tier.
  EXPECT_STREQ(TF->handle()->profile()->Backend.load(), "icode");
}

TEST(Tier, CallersSurviveEvictionChurnAroundPromotion) {
  ServiceConfig Cfg;
  Cfg.Shards = 1;
  Cfg.MaxCodeBytes = 512; // Constant eviction pressure on both tiers.
  CompileService S(Cfg);
  TierManager TM(config(64, 2));
  apps::HashApp H(256, 100, 5);
  int Key = H.presentKey();
  int Want = Key * 2 + 1;

  TieredFnHandle TF = H.specializeTiered(S, &TM);
  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      if (T % 2) {
        // Churners: flood the cache so baselines and promotions evict.
        for (unsigned I = 0; I < 150; ++I) {
          apps::PowerApp P(2 + (T * 31 + I) % 24);
          FnHandle F = P.specializeCached(S);
          if (F->as<int(int)>()(1) != 1)
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        // Callers: the dispatch slot must stay correct through eviction of
        // its cache entries (handles pin the regions) and any swap.
        for (unsigned I = 0; I < 3000; ++I)
          if (TF->call<int(int)>(Key) != Want)
            Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GT(S.cache().stats().Evictions, 0u);
  // Promotion may have been dropped as stale (baseline evicted) — that is
  // legal; so is a background baseline compile still in flight (tier 0).
  // What is not legal is a wrong answer or a torn state.
  TierState St = TF->state();
  EXPECT_TRUE(St == TierState::Interpreted || St == TierState::Baseline ||
              St == TierState::Queued || St == TierState::Promoted);
  EXPECT_EQ(TF->call<int(int)>(Key), Want);
}

} // namespace
