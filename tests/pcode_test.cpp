//===- tests/pcode_test.cpp - Copy-and-patch backend tests ----------------===//
//
// Covers the PCODE backend: stencil-library construction and its build-time
// self-validation, hole patching across every immediate/displacement class,
// label fixups over stencil-emitted branches (forward and backward), the
// byte-identity guarantee against VCODE, end-to-end execution through
// compileFn, and an 8-thread instantiation stress (run under
// -fsanitize=thread in CI — the library is a shared read-only singleton).
//
//===----------------------------------------------------------------------===//

#include "core/Compile.h"
#include "core/Context.h"
#include "observability/Metrics.h"
#include "observability/Names.h"
#include "pcode/PCode.h"
#include "vcode/VCode.h"
#include "x86/X86Decoder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;

namespace {

// --- Stencil library -------------------------------------------------------

TEST(StencilLibrary, BuildsOnceAndSelfValidates) {
  // get() builds (and dual-render/decode-validates) the library on first
  // use; reaching this line at all means every stencil passed. It is a
  // process-wide singleton.
  const pcode::StencilLibrary &A = pcode::StencilLibrary::get();
  const pcode::StencilLibrary &B = pcode::StencilLibrary::get();
  EXPECT_EQ(&A, &B);
  EXPECT_GT(A.stencilCount(), 1000u);
  EXPECT_GT(A.buildCycles(), 0u);
  EXPECT_GT(A.tableBytes(), 0u);
}

TEST(StencilLibrary, ClassMaskMatchesRenderedVocabulary) {
  const pcode::StencilLibrary &L = pcode::StencilLibrary::get();
  auto Has = [&](x86::InstrClass C) {
    return (L.ClassMask & (std::uint64_t(1) << static_cast<unsigned>(C))) != 0;
  };
  // Classes the rendered stencils certainly contain...
  EXPECT_TRUE(Has(x86::InstrClass::AluRR));
  EXPECT_TRUE(Has(x86::InstrClass::AluRI));
  EXPECT_TRUE(Has(x86::InstrClass::MovImm32));
  EXPECT_TRUE(Has(x86::InstrClass::MovImm64));
  EXPECT_TRUE(Has(x86::InstrClass::ShiftImm));
  EXPECT_TRUE(Has(x86::InstrClass::Setcc));
  EXPECT_TRUE(Has(x86::InstrClass::Load));
  EXPECT_TRUE(Has(x86::InstrClass::Store32));
  // ...and classes the back end never emits must stay absent.
  EXPECT_FALSE(Has(x86::InstrClass::Lea));
  EXPECT_FALSE(Has(x86::InstrClass::JmpInd));
  EXPECT_FALSE(Has(x86::InstrClass::MovqRX));
  // Glue mask covers the fallback vocabulary but likewise never the
  // untouched classes.
  constexpr std::uint64_t Glue = pcode::StencilAssembler::glueClassMask();
  EXPECT_NE(Glue & (std::uint64_t(1)
                    << static_cast<unsigned>(x86::InstrClass::CallInd)),
            0u);
  EXPECT_EQ(Glue & (std::uint64_t(1)
                    << static_cast<unsigned>(x86::InstrClass::Lea)),
            0u);
}

TEST(StencilLibrary, PublishesBuildMetrics) {
  const pcode::StencilLibrary &L = pcode::StencilLibrary::get();
  auto &R = obs::MetricsRegistry::global();
  EXPECT_EQ(R.counter(obs::names::StencilLibCount).value(), L.stencilCount());
  EXPECT_EQ(R.counter(obs::names::StencilLibBytes).value(), L.tableBytes());
  EXPECT_GT(R.counter(obs::names::StencilLibBuildCycles).value(), 0u);
}

// --- Byte identity against VCODE -------------------------------------------

/// Drives an identical op sequence through both machines and compares the
/// finished bytes. The sequence is chosen to cross every stencil family:
/// pow2 / two-bit / general multiply, pow2 div and mod, both ALU immediate
/// classes, all three displacement classes, 64-bit constants of each size
/// class, compares, a branch over a negate, and the frame save-erasure that
/// finish() applies to unused pool registers.
template <class VM> std::size_t driveOpMix(VM &V) {
  V.enter();
  V.bindArgI(0, 0);
  V.bindArgI(1, 1);
  V.setI(2, 12345678);
  V.addI(3, 0, 1);
  V.subI(3, 3, 2);
  V.mulII(4, 3, 12);     // two-bit: (x<<3)+(x<<2)
  V.mulII(4, 4, 32);     // pow2
  V.mulII(4, 4, -7);     // general imul
  V.divII(4, 4, 8);      // pow2 division
  V.modII(2, 4, 16);     // pow2 remainder
  V.addII(2, 2, 3);      // imm8 class
  V.addII(2, 2, 100000); // imm32 class
  V.shlII(2, 2, 3);
  V.ushrII(2, 2, 2);
  V.setL(5, 0x123456789abLL);
  V.addL(5, 5, 5);
  V.sextIToL(6, 2);
  V.addL(5, 5, 6);
  auto T = V.newLabel();
  V.cmpSetI(vcode::CmpKind::LtS, 3, 2, 0);
  V.brTrueI(3, T); // forward branch, fixed up at bindLabel
  V.negI(2, 2);
  V.bindLabel(T);
  V.ldI(3, 1, 0);    // disp class 0
  V.ldI(3, 1, 8);    // disp8
  V.ldI(3, 1, 1000); // disp32
  V.stI(1, 4, 3);
  V.notI(3, 3);
  V.retI(2);
  V.finish();
  return V.codeBytes();
}

TEST(PCode, ByteIdenticalToVCodeOnOpMix) {
  std::uint8_t B1[4096], B2[4096];
  Arena A1(1 << 14), A2(1 << 14);
  vcode::VCode V(B1, sizeof(B1), &A1);
  pcode::PCode P(B2, sizeof(B2), &A2);
  std::size_t L1 = driveOpMix(V);
  std::size_t L2 = driveOpMix(P);
  ASSERT_EQ(L1, L2);
  EXPECT_EQ(V.instructionsEmitted(), P.instructionsEmitted());
  EXPECT_EQ(std::memcmp(B1, B2, L1), 0);
  // The mix must actually exercise the fast path, not fall back throughout.
  EXPECT_GT(P.assembler().stencilInstrs(), 0u);
  EXPECT_GT(P.assembler().patchesApplied(), 0u);
}

TEST(PCode, ImmediateHolePatchingAcrossClasses) {
  // Boundary immediates for every hole class: imm8 vs imm32 ALU forms, the
  // three setL size classes, and shift counts. Each value must produce
  // bytes identical to the encoder's own choice of encoding.
  const std::int32_t Imm32s[] = {1,   -1,        127,        -128,
                                 128, -129,      0x7fffffff, INT32_MIN,
                                 42,  0x12345678};
  for (std::int32_t Imm : Imm32s) {
    std::uint8_t B1[512], B2[512];
    Arena A1(1 << 12), A2(1 << 12);
    vcode::VCode V(B1, sizeof(B1), &A1);
    pcode::PCode P(B2, sizeof(B2), &A2);
    auto Drive = [Imm](auto &M) {
      M.enter();
      M.bindArgI(0, 0);
      M.setI(1, Imm);
      M.addII(2, 0, Imm);
      M.cmpSetI(vcode::CmpKind::LtS, 2, 2, 0);
      M.retI(2);
      M.finish();
      return M.codeBytes();
    };
    std::size_t L1 = Drive(V), L2 = Drive(P);
    ASSERT_EQ(L1, L2) << "imm " << Imm;
    EXPECT_EQ(std::memcmp(B1, B2, L1), 0) << "imm " << Imm;
  }
  const std::int64_t Imm64s[] = {0, 1, -1, 0x7fffffffLL, 0x80000000LL,
                                 -0x80000000LL, -0x80000001LL,
                                 0x0123456789abcdefLL, INT64_MIN};
  for (std::int64_t Imm : Imm64s) {
    std::uint8_t B1[512], B2[512];
    Arena A1(1 << 12), A2(1 << 12);
    vcode::VCode V(B1, sizeof(B1), &A1);
    pcode::PCode P(B2, sizeof(B2), &A2);
    auto Drive = [Imm](auto &M) {
      M.enter();
      M.setL(0, Imm);
      M.retL(0);
      M.finish();
      return M.codeBytes();
    };
    std::size_t L1 = Drive(V), L2 = Drive(P);
    ASSERT_EQ(L1, L2) << "imm64 " << Imm;
    EXPECT_EQ(std::memcmp(B1, B2, L1), 0) << "imm64 " << Imm;
  }
}

TEST(PCode, ForwardAndBackwardBranchesPatch) {
  // A loop (backward branch into stencil-emitted code) containing a guarded
  // skip (forward branch): both fixup directions must land on the same
  // offsets VCODE computes, because the branch targets sit inside
  // stencil-copied regions.
  auto Drive = [](auto &M) {
    M.enter();
    M.bindArgI(0, 0);
    M.setI(1, 0); // acc
    M.setI(2, 0); // i
    auto Head = M.newLabel();
    auto Skip = M.newLabel();
    M.bindLabel(Head);
    M.addI(1, 1, 2);
    M.cmpSetI(vcode::CmpKind::Eq, 3, 2, 5);
    M.brTrueI(3, Skip); // forward
    M.addII(1, 1, 100);
    M.bindLabel(Skip);
    M.addII(2, 2, 1);
    M.cmpSetI(vcode::CmpKind::LtS, 3, 2, 0);
    M.brTrueI(3, Head); // backward
    M.retI(1);
    M.finish();
    return M.codeBytes();
  };
  std::uint8_t B1[1024], B2[1024];
  Arena A1(1 << 12), A2(1 << 12);
  vcode::VCode V(B1, sizeof(B1), &A1);
  pcode::PCode P(B2, sizeof(B2), &A2);
  std::size_t L1 = Drive(V), L2 = Drive(P);
  ASSERT_EQ(L1, L2);
  EXPECT_EQ(std::memcmp(B1, B2, L1), 0);
}

// --- End-to-end through compileFn ------------------------------------------

Stmt sumOfSquares(Context &C) {
  VSpec N = C.paramInt(0);
  VSpec Acc = C.localInt();
  VSpec I = C.localInt();
  Stmt Init = C.assign(Acc, C.intConst(0));
  Stmt Body = C.assign(Acc, Expr(Acc) + Expr(I) * Expr(I));
  Stmt Loop = C.forStmt(I, C.intConst(0), vcode::CmpKind::LtS, Expr(N),
                        C.intConst(1), Body);
  return C.block({Init, Loop, C.ret(Expr(Acc))});
}

int sumOfSquaresRef(int N) {
  int Acc = 0;
  for (int I = 0; I < N; ++I)
    Acc += I * I;
  return Acc;
}

TEST(PCode, CompileFnProducesRunnableCode) {
  Context C;
  Stmt Fn = sumOfSquares(C);
  CompiledFn F = compilePCode(C, Fn, EvalType::Int);
  ASSERT_TRUE(F.valid());
  auto *P = F.as<int(int)>();
  for (int N : {0, 1, 5, 100})
    EXPECT_EQ(P(N), sumOfSquaresRef(N)) << "N=" << N;
  EXPECT_GT(F.stats().MachineInstrs, 0u);
}

TEST(PCode, CompileFnMatchesVCodeSizeAndCounts) {
  // The same spec through both back ends: the byte-identity guarantee
  // implies equal code size and instruction count (the regions themselves
  // are separately owned, so sizes are the observable).
  Context C1, C2;
  CompiledFn FV = compileVCode(C1, sumOfSquares(C1), EvalType::Int);
  CompiledFn FP = compilePCode(C2, sumOfSquares(C2), EvalType::Int);
  ASSERT_TRUE(FV.valid());
  ASSERT_TRUE(FP.valid());
  EXPECT_EQ(FV.stats().CodeBytes, FP.stats().CodeBytes);
  EXPECT_EQ(FV.stats().MachineInstrs, FP.stats().MachineInstrs);
  EXPECT_EQ(std::memcmp(FV.entry(), FP.entry(), FV.stats().CodeBytes), 0);
}

TEST(PCode, VerifiedCompileIsAcceptClean) {
  // TICKC_VERIFY-equivalent: the machine audit (strict decode + stencil
  // class mask) must accept PCODE output.
  Context C;
  CompileOptions O;
  O.Backend = BackendKind::PCode;
  O.Verify = true;
  CompiledFn F = compileFn(C, sumOfSquares(C), EvalType::Int, O);
  ASSERT_TRUE(F.valid());
  EXPECT_EQ(F.as<int(int)>()(10), sumOfSquaresRef(10));
}

TEST(PCode, EightThreadInstantiationStress) {
  // Eight threads instantiating concurrently: the stencil library is a
  // shared read-only singleton after construction, so the only writes are
  // into thread-private code buffers. TSan runs this in CI.
  constexpr int Threads = 8, Reps = 24;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&Failures, T] {
      for (int Rep = 0; Rep < Reps; ++Rep) {
        Context C;
        CompiledFn F = compilePCode(C, sumOfSquares(C), EvalType::Int);
        int N = 3 + (T + Rep) % 7;
        if (!F.valid() || F.as<int(int)>()(N) != sumOfSquaresRef(N))
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto &Th : Pool)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
