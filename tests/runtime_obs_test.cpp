//===- tests/runtime_obs_test.cpp - Runtime observability tests -----------===//
//
// Covers the execution-side observability stack: the runtime symbol table
// (register/resolve/retire, perf-map export format), the SIGPROF sampling
// profiler (attribution of samples to a known-hot specialization, folded
// stacks), sample-driven tier promotion, the crash-time flight recorder
// (ring semantics and the fatal-signal dump, via a death test faulting
// inside a deliberately corrupted registered region), the shared metrics
// JSON writer, and symbol-table churn under multi-threaded tier promotion
// and cache eviction (run under -fsanitize=thread in CI).
//
//===----------------------------------------------------------------------===//

#include "apps/Hash.h"
#include "apps/Power.h"
#include "cache/CompileService.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "observability/Flight.h"
#include "observability/Metrics.h"
#include "observability/Names.h"
#include "observability/Report.h"
#include "observability/RuntimeSymbols.h"
#include "observability/Sampler.h"
#include "support/Timing.h"
#include "tier/Tier.h"

#include <gtest/gtest.h>

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;
using namespace tcc::obs;

namespace {

/// Compiles `f(n) = sum_{i<n} i*i` with the bound as a runtime parameter,
/// so the loop cannot unroll and the generated code runs a real hot loop.
CompiledFn compileHotLoop(Context &C, const char *Name,
                          BackendKind BK = BackendKind::VCode) {
  VSpec N = C.paramInt(0);
  VSpec I = C.localInt(), Acc = C.localInt();
  CompileOptions O;
  O.Backend = BK;
  O.Profile = true;
  O.ProfileName = Name;
  return compileFn(C,
                   C.block({
                       C.assign(Acc, C.intConst(0)),
                       C.forStmt(I, C.intConst(0), CmpKind::LtS, Expr(N),
                                 C.intConst(1),
                                 C.assign(Acc, Expr(Acc) + Expr(I) * Expr(I))),
                       C.ret(Acc),
                   }),
                   EvalType::Int, O);
}

// --- RuntimeSymbolTable ------------------------------------------------------

TEST(RuntimeSymbols, RegisterResolveRetire) {
  RuntimeSymbolTable &T = RuntimeSymbolTable::global();
  std::size_t Before = T.liveCount();
  std::uint64_t Epoch = T.registrationEpoch();

  alignas(16) static char Region[128];
  std::atomic<std::uint64_t> ProfSamples{0};
  SymbolHandle H =
      T.registerRegion(Region, sizeof(Region), "unit_region", &ProfSamples);
  ASSERT_TRUE(H.valid());
  EXPECT_EQ(T.liveCount(), Before + 1);
  EXPECT_GT(T.registrationEpoch(), Epoch);

  char Name[RuntimeSymbolTable::NameBytes];
  std::uintptr_t Start = 0;
  std::size_t Size = 0;
  // Interior PC resolves; one-past-the-end and outside do not.
  EXPECT_TRUE(T.resolve(reinterpret_cast<std::uintptr_t>(Region) + 64, Name,
                        &Start, &Size));
  EXPECT_STREQ(Name, "unit_region");
  EXPECT_EQ(Start, reinterpret_cast<std::uintptr_t>(Region));
  EXPECT_EQ(Size, sizeof(Region));
  EXPECT_FALSE(T.resolve(reinterpret_cast<std::uintptr_t>(Region) +
                             sizeof(Region),
                         Name, &Start, &Size));

  // Signal-path sampling feeds both the slot and the external counter.
  EXPECT_GE(T.sampleHit(reinterpret_cast<std::uintptr_t>(Region) + 4, 1000),
            0);
  EXPECT_EQ(ProfSamples.load(), 1u);

  H.reset();
  EXPECT_FALSE(H.valid());
  EXPECT_EQ(T.liveCount(), Before);
  EXPECT_FALSE(T.resolve(reinterpret_cast<std::uintptr_t>(Region) + 64, Name,
                         &Start, &Size));
  H.reset(); // Idempotent.
}

TEST(RuntimeSymbols, EveryCompiledRegionIsRegisteredAndNamed) {
  RuntimeSymbolTable &T = RuntimeSymbolTable::global();
  Context C;
  CompiledFn F = compileHotLoop(C, "named_loop");
  ASSERT_NE(F.entry(), nullptr);
  EXPECT_EQ(F.as<int(int)>()(10), 285);

  char Name[RuntimeSymbolTable::NameBytes];
  std::uintptr_t Start = 0;
  std::size_t Size = 0;
  ASSERT_TRUE(T.resolve(reinterpret_cast<std::uintptr_t>(F.entry()), Name,
                        &Start, &Size));
  EXPECT_STREQ(Name, "named_loop");
  EXPECT_EQ(Start, reinterpret_cast<std::uintptr_t>(F.entry()));
  EXPECT_GE(Size, F.stats().CodeBytes);
}

TEST(RuntimeSymbols, PerfMapCoversLiveRegionsAndRewritesOnRetire) {
  RuntimeSymbolTable &T = RuntimeSymbolTable::global();
  std::string Path = ::testing::TempDir() + "tickc_perf_map_test.map";
  T.enablePerfExport(PerfExport::Map, Path.c_str());
  EXPECT_EQ(T.perfExport(), PerfExport::Map);
  EXPECT_EQ(T.perfMapPath(), Path);

  Context C1, C2;
  CompiledFn F1 = compileHotLoop(C1, "pm_loop_one");
  CompiledFn F2 = compileHotLoop(C2, "pm_loop_two");

  // Every live region appears as a parseable "START SIZE name" line with
  // the address and size the symbol table holds.
  auto parseMap = [&] {
    std::ifstream In(Path);
    std::vector<std::tuple<std::uint64_t, std::uint64_t, std::string>> Rows;
    std::string Line;
    while (std::getline(In, Line)) {
      std::istringstream LS(Line);
      std::uint64_t Start = 0, Size = 0;
      std::string Name;
      LS >> std::hex >> Start >> Size >> Name;
      EXPECT_FALSE(LS.fail()) << "unparseable perf-map line: " << Line;
      Rows.emplace_back(Start, Size, Name);
    }
    return Rows;
  };
  auto covers = [&](const void *Entry, const char *Name) {
    for (const auto &R : parseMap())
      if (std::get<0>(R) == reinterpret_cast<std::uint64_t>(Entry) &&
          std::get<1>(R) > 0 && std::get<2>(R) == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(covers(F1.entry(), "pm_loop_one"));
  EXPECT_TRUE(covers(F2.entry(), "pm_loop_two"));

  // Retiring a region rewrites the file without it — a stale line cannot
  // shadow whatever gets the address next.
  const void *Gone = F1.entry();
  F1 = CompiledFn();
  EXPECT_FALSE(covers(Gone, "pm_loop_one"));
  EXPECT_TRUE(covers(F2.entry(), "pm_loop_two"));

  T.enablePerfExport(PerfExport::Off);
  std::remove(Path.c_str());
}

TEST(RuntimeSymbols, JitdumpHeaderAndLoadRecords) {
  RuntimeSymbolTable &T = RuntimeSymbolTable::global();
  std::string Dir = ::testing::TempDir();
  T.enablePerfExport(PerfExport::Jitdump, nullptr, Dir.c_str());
  std::string Path = T.jitdumpPath();
  ASSERT_FALSE(Path.empty());
  // perf inject only picks up files named jit-<pid>.dump.
  char Expect[64];
  std::snprintf(Expect, sizeof(Expect), "jit-%d.dump", (int)getpid());
  EXPECT_NE(Path.find(Expect), std::string::npos) << Path;

  Context C;
  CompiledFn F = compileHotLoop(C, "jd_loop");
  ASSERT_NE(F.entry(), nullptr);
  T.enablePerfExport(PerfExport::Off);

  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  std::uint32_t Magic = 0, Version = 0;
  In.read(reinterpret_cast<char *>(&Magic), 4);
  In.read(reinterpret_cast<char *>(&Version), 4);
  EXPECT_EQ(Magic, 0x4A695444u); // "JiTD"
  EXPECT_EQ(Version, 1u);

  // The dump must contain a JIT_CODE_LOAD record for our region: the name,
  // followed by the exact code bytes at the entry.
  std::ostringstream All;
  In.seekg(0);
  All << In.rdbuf();
  std::string Bytes = All.str();
  std::string Needle = std::string("jd_loop") + '\0';
  Needle.append(reinterpret_cast<const char *>(F.entry()),
                std::min<std::size_t>(F.stats().CodeBytes, 16));
  EXPECT_NE(Bytes.find(Needle), std::string::npos);
  std::remove(Path.c_str());
}

// --- Sampler -----------------------------------------------------------------

TEST(Sampler, AttributesHotLoopSamplesToItsSymbol) {
  Sampler &S = Sampler::global();
  S.resetForTesting();

  Context C;
  CompiledFn F = compileHotLoop(C, "hot_attrib_loop");
  auto *Fn = F.as<int(int)>();
  ASSERT_EQ(Fn(100), 328350);

  ASSERT_TRUE(S.start(1997));
  EXPECT_TRUE(S.running());
  EXPECT_EQ(S.hz(), 1997u);

  // Spend ~0.4 s of CPU almost entirely inside the generated loop.
  auto Until = std::chrono::steady_clock::now() + std::chrono::seconds(4);
  volatile int Sink = 0;
  while (S.totalSamples() < 200 && std::chrono::steady_clock::now() < Until)
    Sink = Sink + Fn(1 << 16);
  S.stop();
  EXPECT_FALSE(S.running());

  std::uint64_t Total = S.totalSamples();
  ASSERT_GE(Total, 50u) << "sampler delivered too few ticks to judge";
  // >=90% of samples must resolve to a registered specialization.
  EXPECT_GE(S.hitSamples() * 10, Total * 9)
      << "hits=" << S.hitSamples() << " misses=" << S.missSamples()
      << " total=" << Total;
  EXPECT_EQ(S.hitSamples() + S.missSamples(), Total);

  // The hot specialization dominates the table's heat ranking and its
  // ProfileEntry carries the execution-side sample count.
  ASSERT_TRUE(F.profile() != nullptr);
  EXPECT_GT(F.profile()->Samples.load(), 0u);
  std::vector<SymbolInfo> Hot = RuntimeSymbolTable::global().hotSymbols();
  ASSERT_FALSE(Hot.empty());
  EXPECT_EQ(Hot.front().Name, "hot_attrib_loop");
  EXPECT_GT(Hot.front().Samples, 0u);
  // The self-cycle histogram saw consecutive-sample deltas.
  std::uint64_t HistTotal = 0;
  for (std::uint32_t B : Hot.front().SelfCycles)
    HistTotal += B;
  EXPECT_GT(HistTotal, 0u);

  // Folded stacks are flamegraph-ready and lead with the hot symbol.
  std::string Folded = S.foldedStacks();
  EXPECT_EQ(Folded.compare(0, 6, "tickc;"), 0) << Folded;
  EXPECT_NE(Folded.find("tickc;hot_attrib_loop "), std::string::npos)
      << Folded;

  std::string Path = ::testing::TempDir() + "tickc_folded_test.txt";
  EXPECT_TRUE(S.writeFolded(Path.c_str()));
  std::ifstream In(Path);
  std::string OnDisk((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(OnDisk, Folded);
  std::remove(Path.c_str());
}

TEST(Sampler, StartIsIdempotentAndReArms) {
  Sampler &S = Sampler::global();
  ASSERT_TRUE(S.start(500));
  ASSERT_TRUE(S.start(997)); // Re-arm at a new rate, not an error.
  EXPECT_EQ(S.hz(), 997u);
  S.stop();
  S.stop(); // Idempotent.
  EXPECT_FALSE(S.running());
}

// --- Sample-driven tier promotion -------------------------------------------

TEST(Tier, SampleSignalPromotesWhenInvocationCounterCannotFire) {
  Sampler &S = Sampler::global();
  S.resetForTesting();

  // Invocation-count promotion is unreachable; only the execution-sample
  // watcher can promote this slot.
  tier::TierConfig TC;
  TC.Workers = 1;
  TC.PromoteThreshold = 1ull << 60;
  TC.SamplePromoteThreshold = 8;
  TC.SampleWatchMs = 2;

  cache::CompileService Svc;
  tier::TierManager TM(TC);
  apps::HashApp H(256, 100, 3);
  tier::TieredFnHandle TF = H.specializeTiered(Svc, &TM);
  ASSERT_TRUE(TF);
  // Tier 0 (the default) births the slot interpreted; the sample watcher
  // takes over once the background baseline lands.
  tier::TierState St0 = TF->state();
  EXPECT_TRUE(St0 == tier::TierState::Interpreted ||
              St0 == tier::TierState::Baseline)
      << static_cast<int>(St0);

  std::uint64_t SampledBefore =
      MetricsRegistry::global().snapshot().counter(names::TierPromoteSampled);

  ASSERT_TRUE(S.start(4000));
  int Key = H.presentKey();
  auto Until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!TF->promoted() && std::chrono::steady_clock::now() < Until) {
    for (int I = 0; I < 512; ++I)
      ASSERT_EQ(TF->call<int(int)>(Key), Key * 2 + 1);
  }
  S.stop();

  EXPECT_TRUE(TF->waitPromoted());
  // The invocation trigger never came close: promotion was sample-driven.
  EXPECT_LT(TF->invocations(), TC.PromoteThreshold);
  EXPECT_GT(
      MetricsRegistry::global().snapshot().counter(names::TierPromoteSampled),
      SampledBefore);
  EXPECT_EQ(TF->call<int(int)>(Key), Key * 2 + 1);
}

// --- Flight recorder ---------------------------------------------------------

TEST(Flight, RecordSnapshotAndWrap) {
  FlightRecorder &FR = FlightRecorder::global();
  FR.resetForTesting();

  flightRecord(FlightEvent::CompileBegin, 1, 0, "flt_first");
  flightRecord(FlightEvent::CompileEnd, 2, 3, "flt_first");
  flightRecord(FlightEvent::TierSwap, 4, 5, "flt_swap");
  EXPECT_EQ(FR.eventCount(), 3u);

  std::vector<FlightRecorder::Record> Snap = FR.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  EXPECT_EQ(Snap[0].Kind, FlightEvent::CompileBegin);
  EXPECT_STREQ(Snap[0].Name, "flt_first");
  EXPECT_EQ(Snap[1].A, 2u);
  EXPECT_EQ(Snap[1].B, 3u);
  EXPECT_EQ(Snap[2].Kind, FlightEvent::TierSwap);
  EXPECT_STREQ(Snap[2].Name, "flt_swap");

  // Overfill the ring: only the newest Capacity records survive, in order.
  for (unsigned I = 0; I < FlightRecorder::Capacity + 40; ++I)
    flightRecord(FlightEvent::CacheEvict, I, 0, "flt_wrap");
  Snap = FR.snapshot();
  ASSERT_EQ(Snap.size(), (std::size_t)FlightRecorder::Capacity);
  EXPECT_EQ(Snap.back().A, FlightRecorder::Capacity + 39u);
  EXPECT_EQ(Snap.front().A + FlightRecorder::Capacity - 1, Snap.back().A);

  EXPECT_STREQ(flightEventName(FlightEvent::VerifyFail), "verify.fail");
  EXPECT_STREQ(flightEventName(FlightEvent::RegionRetire), "region.retire");
}

TEST(Flight, CompilePipelineFeedsTheRing) {
  FlightRecorder &FR = FlightRecorder::global();
  FR.resetForTesting();
  Context C;
  CompiledFn F = compileHotLoop(C, "flt_compiled");
  ASSERT_NE(F.entry(), nullptr);

  bool SawBegin = false, SawEnd = false;
  for (const FlightRecorder::Record &R : FR.snapshot()) {
    if (R.Kind == FlightEvent::CompileBegin &&
        !std::strcmp(R.Name, "flt_compiled"))
      SawBegin = true;
    if (R.Kind == FlightEvent::CompileEnd &&
        !std::strcmp(R.Name, "flt_compiled")) {
      SawEnd = true;
      EXPECT_EQ(R.A, F.stats().CodeBytes);
    }
  }
  EXPECT_TRUE(SawBegin);
  EXPECT_TRUE(SawEnd);

  // Destroying the function retires its region into the ring.
  F = CompiledFn();
  bool SawRetire = false;
  for (const FlightRecorder::Record &R : FR.snapshot())
    SawRetire |= R.Kind == FlightEvent::RegionRetire &&
                 !std::strcmp(R.Name, "flt_compiled");
  EXPECT_TRUE(SawRetire);
}

/// Maps a page, fills it with ud2, registers it as a symbol, and jumps in —
/// the fatal-signal handler must dump the ring and name the faulting
/// specialization on stderr before the process dies of SIGILL.
[[noreturn]] void crashInsideCorruptedRegion() {
  FlightRecorder::global().installFatalHandler();
  void *P = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    _exit(97);
  std::memset(P, 0x0B, 4096); // ud2 = 0F 0B; 0B 0B also faults.
  static_cast<unsigned char *>(P)[0] = 0x0F;
  static_cast<unsigned char *>(P)[1] = 0x0B;
  if (mprotect(P, 4096, PROT_READ | PROT_EXEC) != 0)
    _exit(98);
  SymbolHandle H = RuntimeSymbolTable::global().registerRegion(
      P, 4096, "corrupted_region", nullptr);
  flightRecord(FlightEvent::CompileEnd, 4096, 0, "corrupted_region");
  reinterpret_cast<void (*)()>(P)();
  _exit(99); // Unreachable.
}

TEST(Flight, FatalSignalDumpNamesTheFaultingRegion) {
  EXPECT_DEATH(crashInsideCorruptedRegion(),
               "flight recorder(.|\n)*corrupted_region");
}

// --- Metrics JSON ------------------------------------------------------------

TEST(Metrics, SnapshotJsonShape) {
  MetricsRegistry &R = MetricsRegistry::global();
  R.counter("test.json.counter").inc(7);
  R.histogram("test.json.hist").record(5);
  R.histogram("test.json.hist").record(11);

  std::string J = R.snapshotJson(2);
  // Balanced braces/brackets — the block nests inside a larger document.
  int Depth = 0;
  bool InStr = false;
  for (std::size_t I = 0; I < J.size(); ++I) {
    char Ch = J[I];
    if (Ch == '"' && (I == 0 || J[I - 1] != '\\'))
      InStr = !InStr;
    if (InStr)
      continue;
    if (Ch == '{' || Ch == '[')
      ++Depth;
    if (Ch == '}' || Ch == ']') {
      --Depth;
      EXPECT_GE(Depth, 0);
    }
  }
  EXPECT_FALSE(InStr);
  EXPECT_EQ(Depth, 0);

  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"histograms\""), std::string::npos);
  EXPECT_NE(J.find("\"test.json.counter\": 7"), std::string::npos) << J;
  EXPECT_NE(J.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(J.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"sum\": 16"), std::string::npos);
  EXPECT_NE(J.find("\"buckets\""), std::string::npos);
}

// --- Phase coverage drift guard ---------------------------------------------

TEST(Report, PhaseCoverageHoldsAfterRealCompiles) {
  // Serial compiles on a clean registry: every timed region runs under its
  // PhaseScope, so the drift guard must hold (concurrent suites can land
  // sampler ticks between scopes and legitimately dip below the bar). The
  // bodies are deliberately large — the guard exists to catch a lost
  // PhaseScope, not the fixed rdtsc epsilon of the scopes themselves,
  // which only shows above 5% on near-empty compiles. One warm-up compile
  // first: cold-start page faults land between scopes and skew the ratio.
  {
    Context C;
    CompileOptions O;
    O.Backend = BackendKind::ICode;
    (void)compileFn(C, C.ret(C.read(C.paramInt(0))), EvalType::Int, O);
  }
  MetricsRegistry::global().resetAll();
  for (unsigned Rep = 0; Rep < 10; ++Rep) {
    Context C;
    VSpec N = C.paramInt(0);
    Expr Acc = C.intConst(1);
    for (int K = 2; K < 120; ++K)
      Acc = Acc + Expr(N) * C.intConst(K);
    CompileOptions O;
    O.Backend = BackendKind::ICode;
    CompiledFn F = compileFn(C, C.ret(Acc), EvalType::Int, O);
    ASSERT_NE(F.entry(), nullptr);
  }
  MetricsSnapshot S = MetricsRegistry::global().snapshot();
  ASSERT_GT(S.counter(names::CompileCyclesTotal), 0u);
  EXPECT_TRUE(phaseCoverageOk(S));
  EXPECT_GE(phaseCycleSum(S) * 100, S.counter(names::CompileCyclesTotal) * 95);
  std::string Rep = renderReport(S);
  EXPECT_EQ(Rep.find("WARNING: phases cover only"), std::string::npos) << Rep;
}

TEST(Report, PhaseCoverageDriftTriggersWarning) {
  // A snapshot claiming compiles happened but carrying no phase counters
  // models a timed region that lost its PhaseScope.
  MetricsSnapshot S;
  S.Counters.push_back({std::string(names::CompileCyclesTotal), 1000000});
  EXPECT_FALSE(phaseCoverageOk(S));
  std::string Rep = renderReport(S);
  EXPECT_NE(Rep.find("WARNING: phases cover only"), std::string::npos);

  MetricsSnapshot Empty; // Nothing compiled -> nothing to drift.
  EXPECT_TRUE(phaseCoverageOk(Empty));
}

// --- Concurrency: symbol churn under tier promotion + eviction --------------

TEST(RuntimeSymbols, ChurnUnderEightThreadPromotionAndEviction) {
  // Small single-shard cache: constant eviction, so regions (and their
  // symbols) register and retire continuously while the sampler fires and
  // readers walk the table. Run under TSan in CI.
  cache::ServiceConfig Cfg;
  Cfg.Shards = 1;
  Cfg.MaxCodeBytes = 512;
  cache::CompileService Svc(Cfg);
  tier::TierConfig TC;
  TC.Workers = 2;
  TC.PromoteThreshold = 64;
  tier::TierManager TM(TC);

  Sampler &S = Sampler::global();
  ASSERT_TRUE(S.start(2000));

  apps::HashApp H(256, 100, 5);
  int Key = H.presentKey();
  int Want = Key * 2 + 1;
  tier::TieredFnHandle TF = H.specializeTiered(Svc, &TM);

  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      if (T % 4 == 0) {
        // Readers: resolve and rank while slots churn underneath.
        RuntimeSymbolTable &Tab = RuntimeSymbolTable::global();
        char Name[RuntimeSymbolTable::NameBytes];
        std::uintptr_t Start = 0;
        std::size_t Size = 0;
        for (unsigned I = 0; I < 400; ++I) {
          (void)Tab.resolve(reinterpret_cast<std::uintptr_t>(&Failures) + I,
                            Name, &Start, &Size);
          (void)Tab.hotSymbols();
          if (Tab.liveCount() > RuntimeSymbolTable::Capacity)
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (T % 2) {
        // Churners: flood the cache so baselines and promotions evict,
        // registering and retiring symbols the whole time.
        for (unsigned I = 0; I < 150; ++I) {
          apps::PowerApp P(2 + (T * 31 + I) % 24);
          cache::FnHandle F = P.specializeCached(Svc);
          if (F->as<int(int)>()(1) != 1)
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        // Callers: keep the tiered slot hot through swaps and evictions.
        for (unsigned I = 0; I < 3000; ++I)
          if (TF->call<int(int)>(Key) != Want)
            Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  S.stop();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GT(Svc.cache().stats().Evictions, 0u);
  // The tier-0 baseline swap is asynchronous; handle() is null until it
  // lands, so wait before resolving the region.
  ASSERT_TRUE(TF->waitCompiled());
  // The slot still answers correctly and its live region still resolves.
  EXPECT_EQ(TF->call<int(int)>(Key), Want);
  char Name[RuntimeSymbolTable::NameBytes];
  std::uintptr_t Start = 0;
  std::size_t Size = 0;
  EXPECT_TRUE(RuntimeSymbolTable::global().resolve(
      reinterpret_cast<std::uintptr_t>(TF->handle()->entry()), Name, &Start,
      &Size));
}

} // namespace
