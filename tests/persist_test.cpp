//===- tests/persist_test.cpp - Persistent snapshot cache tests -----------===//
//
// Covers the warm-start path end to end: relocation side-table capture,
// address-independent PersistKeys, save/load round trips through all three
// back ends (every load must pass the flow-sensitive admission verifier
// before it can execute), relocation patching against moved free variables
// and fresh profile counters, rejection of wrong-fingerprint / corrupted /
// torn files, a deterministic every-byte corruption sweep, the per-file
// size budget (oldest-first eviction at open, refused over-budget appends),
// the per-entry TTL, and an 8-thread concurrent load+compile stress (run
// under -fsanitize=thread in CI).
//
//===----------------------------------------------------------------------===//

#include "apps/Hash.h"
#include "apps/Power.h"
#include "apps/Query.h"
#include "cache/CompileService.h"
#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "persist/Snapshot.h"
#include "support/Fingerprint.h"
#include "support/Hash.h"
#include "support/Reloc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tcc;
using namespace tcc::core;
using namespace tcc::cache;

namespace {

/// A fresh snapshot directory per test, removed (with contents) afterwards.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/tickc_persist_XXXXXX";
    Path = mkdtemp(Buf);
  }
  ~TempDir() {
    if (DIR *D = opendir(Path.c_str())) {
      while (dirent *E = readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Path + "/" + Name).c_str());
      }
      closedir(D);
    }
    ::rmdir(Path.c_str());
  }
  std::string file() const { return Path + "/tickc.snapshot"; }
};

ServiceConfig snapConfig(const TempDir &Dir) {
  ServiceConfig C;
  C.SnapshotDir = Dir.Path;
  return C;
}

/// `fn(x) = x + *Cell`: the free variable's *address* is captured in the
/// closure and planted as a movabs imm64 — the relocation the loader must
/// re-point when the cell lives elsewhere in the loading process.
FnHandle compileCell(CompileService &S, const int *Cell,
                     CompileOptions Opts = CompileOptions()) {
  Context C;
  VSpec X = C.paramInt(0);
  return S.getOrCompile(C, C.ret(Expr(X) + C.fvInt(Cell)), EvalType::Int,
                        Opts);
}

cache::PersistKey persistKeyForCell(const int *Cell,
                                    const CompileOptions &Opts = {}) {
  Context C;
  VSpec X = C.paramInt(0);
  Stmt Body = C.ret(Expr(X) + C.fvInt(Cell));
  return buildPersistKey(C, Body, EvalType::Int, Opts);
}

/// Flips one byte of the snapshot file at \p Offset (negative = from end).
void flipByte(const std::string &File, long Offset) {
  int Fd = ::open(File.c_str(), O_RDWR);
  ASSERT_GE(Fd, 0);
  struct stat St;
  ASSERT_EQ(::fstat(Fd, &St), 0);
  off_t Pos = Offset >= 0 ? Offset : St.st_size + Offset;
  std::uint8_t B;
  ASSERT_EQ(::pread(Fd, &B, 1, Pos), 1);
  B ^= 0xFF;
  ASSERT_EQ(::pwrite(Fd, &B, 1, Pos), 1);
  ::close(Fd);
}

off_t fileSize(const std::string &File) {
  struct stat St;
  return ::stat(File.c_str(), &St) == 0 ? St.st_size : -1;
}

} // namespace

// --- Relocation side table --------------------------------------------------

TEST(RelocTable, CapturesFreeVarAndProfileImm64Slots) {
  static int Cell = 5;
  Context C;
  VSpec X = C.paramInt(0);
  Stmt Body = C.ret(Expr(X) + C.fvInt(&Cell));

  support::RelocTable RT;
  CompileOptions Opts;
  Opts.Profile = true;
  Opts.Relocs = &RT;
  CompiledFn F = compileFn(C, Body, EvalType::Int, Opts);
  ASSERT_TRUE(F.valid());
  EXPECT_FALSE(RT.Unportable);

  // Every recorded slot must hold, verbatim, the imm64 it claims to track:
  // the cell's address for the Ptr reloc, the live invocation counter for
  // the Profile reloc.
  bool SawPtr = false, SawProfile = false;
  const auto *Code = static_cast<const std::uint8_t *>(F.entry());
  for (const support::RelocEntry &E : RT.Entries) {
    std::uint64_t Imm;
    ASSERT_LE(E.Offset + 8, F.stats().CodeBytes);
    std::memcpy(&Imm, Code + E.Offset, 8);
    EXPECT_EQ(Imm, E.Value);
    if (E.Kind == support::RelocKind::Ptr &&
        E.Value == reinterpret_cast<std::uint64_t>(&Cell))
      SawPtr = true;
    if (E.Kind == support::RelocKind::Profile) {
      EXPECT_EQ(E.Value,
                reinterpret_cast<std::uint64_t>(&F.profile()->Invocations));
      SawProfile = true;
    }
  }
  EXPECT_TRUE(SawPtr);
  EXPECT_TRUE(SawProfile);
}

TEST(RelocTable, RecordingDoesNotChangeEmittedBytes) {
  static int Cell = 9;
  for (BackendKind B :
       {BackendKind::VCode, BackendKind::ICode, BackendKind::PCode}) {
    Context C1, C2;
    VSpec X1 = C1.paramInt(0);
    VSpec X2 = C2.paramInt(0);
    CompileOptions Plain;
    Plain.Backend = B;
    CompileOptions Recorded = Plain;
    support::RelocTable RT;
    Recorded.Relocs = &RT;
    CompiledFn A =
        compileFn(C1, C1.ret(Expr(X1) + C1.fvInt(&Cell)), EvalType::Int, Plain);
    CompiledFn F = compileFn(C2, C2.ret(Expr(X2) + C2.fvInt(&Cell)),
                             EvalType::Int, Recorded);
    ASSERT_EQ(A.stats().CodeBytes, F.stats().CodeBytes);
    EXPECT_EQ(std::memcmp(A.entry(), F.entry(), A.stats().CodeBytes), 0)
        << "backend " << static_cast<int>(B);
  }
}

// --- PersistKey canonicalization -------------------------------------------

TEST(PersistKey, AddressIndependentAcrossMovedFreeVars) {
  static int CellA = 1, CellB = 2;
  cache::PersistKey KA = persistKeyForCell(&CellA);
  cache::PersistKey KB = persistKeyForCell(&CellB);
  // Same canonical bytes (the address became an ordinal) ...
  EXPECT_EQ(KA.Hash, KB.Hash);
  EXPECT_EQ(KA.Bytes, KB.Bytes);
  // ... with the differing addresses carried out-of-band, pairable by
  // position.
  ASSERT_EQ(KA.Refs.size(), 1u);
  ASSERT_EQ(KB.Refs.size(), 1u);
  EXPECT_EQ(KA.Refs[0].Addr, reinterpret_cast<std::uint64_t>(&CellA));
  EXPECT_EQ(KB.Refs[0].Addr, reinterpret_cast<std::uint64_t>(&CellB));
  EXPECT_EQ(KA.Refs[0].Kind, KB.Refs[0].Kind);

  // The in-memory SpecKey, by contrast, must keep the addresses inline —
  // two different cells are two different functions to one process.
  Context C1, C2;
  VSpec X1 = C1.paramInt(0), X2 = C2.paramInt(0);
  SpecKey SA = buildSpecKey(C1, C1.ret(Expr(X1) + C1.fvInt(&CellA)),
                            EvalType::Int, CompileOptions());
  SpecKey SB = buildSpecKey(C2, C2.ret(Expr(X2) + C2.fvInt(&CellB)),
                            EvalType::Int, CompileOptions());
  EXPECT_FALSE(SA == SB);
}

// --- Save / load round trips ------------------------------------------------

TEST(Snapshot, RoundTripAllBackendsOnFig7Workloads) {
  apps::HashApp Hash;
  apps::PowerApp Power(13);
  apps::QueryApp Query(64);
  for (BackendKind B :
       {BackendKind::VCode, BackendKind::ICode, BackendKind::PCode}) {
    TempDir Dir;
    CompileOptions Opts;
    Opts.Backend = B;

    int HashWant, PowerWant, QueryWant;
    {
      CompileService Cold(snapConfig(Dir));
      ASSERT_NE(Cold.snapshot(), nullptr);
      HashWant = Hash.specializeCached(Cold, Opts)
                     ->as<int(int)>()(Hash.presentKey());
      PowerWant = Power.specializeCached(Cold, Opts)->as<int(int)>()(3);
      QueryWant = Query.specializeCached(Query.benchmarkQuery(), Cold, Opts)
                      ->as<int(const apps::Record *)>()(&Query.records()[0]);
      EXPECT_EQ(Cold.snapshot()->stats().Hits, 0u);
      EXPECT_EQ(Cold.snapshot()->stats().Saves, 3u);
      EXPECT_EQ(Cold.cache().stats().SnapshotLoads, 0u);
    }

    // A second service over the same directory stands in for a second
    // process: its in-memory cache is empty, so every spec would recompile
    // — unless the snapshot serves it. Every load passed the strict byte
    // audit before executing (tryLoad runs it unconditionally).
    CompileService Warm(snapConfig(Dir));
    FnHandle H = Hash.specializeCached(Warm, Opts);
    EXPECT_TRUE(H->fromSnapshot()) << "backend " << static_cast<int>(B);
    EXPECT_EQ(H->as<int(int)>()(Hash.presentKey()), HashWant);
    EXPECT_EQ(H->as<int(int)>()(Hash.absentKey()), apps::HashApp::Empty);
    EXPECT_EQ(Power.specializeCached(Warm, Opts)->as<int(int)>()(3),
              PowerWant);
    EXPECT_EQ(Query.specializeCached(Query.benchmarkQuery(), Warm, Opts)
                  ->as<int(const apps::Record *)>()(&Query.records()[0]),
              QueryWant);
    EXPECT_EQ(Warm.snapshot()->stats().Hits, 3u);
    EXPECT_EQ(Warm.snapshot()->stats().Rejects, 0u);
    EXPECT_EQ(Warm.snapshot()->stats().Saves, 0u);
    // Satellite guarantee: warm-start loads are classified apart from
    // in-memory hits ...
    EXPECT_EQ(Warm.cache().stats().SnapshotLoads, 3u);
    EXPECT_EQ(Warm.cache().stats().Hits, 0u);
    // ... and a repeat request is an ordinary in-memory hit, not a second
    // snapshot load.
    EXPECT_EQ(Hash.specializeCached(Warm, Opts).get(), H.get());
    EXPECT_EQ(Warm.cache().stats().Hits, 1u);
    EXPECT_EQ(Warm.snapshot()->stats().Hits, 3u);
  }
}

TEST(Snapshot, RelocationPatchingTracksMovedFreeVariable) {
  // The same canonical spec over two different cells: the record written
  // for CellA must, when loaded against CellB's key, read CellB — a loader
  // that skipped (or mis-indexed) the patch would keep answering from
  // CellA.
  static int CellA = 111, CellB = 222;
  TempDir Dir;
  {
    CompileService S1(snapConfig(Dir));
    EXPECT_EQ(compileCell(S1, &CellA)->as<int(int)>()(0), 111);
    EXPECT_EQ(S1.snapshot()->stats().Saves, 1u);
  }
  CompileService S2(snapConfig(Dir));
  FnHandle H = compileCell(S2, &CellB);
  EXPECT_TRUE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(0), 222);
  // Still a live load, not a baked constant.
  CellB = 333;
  EXPECT_EQ(H->as<int(int)>()(0), 333);
  CellB = 222;
  EXPECT_EQ(S2.snapshot()->stats().Hits, 1u);
}

TEST(Snapshot, ProfiledLoadPatchesFreshCounter) {
  static int Cell = 7;
  TempDir Dir;
  CompileOptions Opts;
  Opts.Profile = true;
  Opts.ProfileName = "persist.prof";
  {
    CompileService S1(snapConfig(Dir));
    FnHandle H = compileCell(S1, &Cell, Opts);
    (void)H->as<int(int)>()(1);
    EXPECT_EQ(S1.snapshot()->stats().Saves, 1u);
  }
  CompileService S2(snapConfig(Dir));
  FnHandle H = compileCell(S2, &Cell, Opts);
  ASSERT_TRUE(H->fromSnapshot());
  ASSERT_NE(H->profile(), nullptr);
  // The loaded prologue bumps a counter created by *this* service's load,
  // starting from zero — not the saving process's counter address.
  EXPECT_EQ(H->profile()->Invocations.load(), 0u);
  EXPECT_EQ(H->as<int(int)>()(1), 8);
  EXPECT_EQ(H->as<int(int)>()(2), 9);
  EXPECT_EQ(H->as<int(int)>()(3), 10);
  EXPECT_EQ(H->profile()->Invocations.load(), 3u);
  EXPECT_STREQ(H->profile()->Backend.load(), "snapshot");
}

// --- Rejection and recovery -------------------------------------------------

TEST(Snapshot, WrongFingerprintRejectedNotFatal) {
  static int Cell = 4;
  TempDir Dir;
  {
    CompileService S1(snapConfig(Dir));
    (void)compileCell(S1, &Cell);
  }
  // Another build's fingerprint (byte 8 of the file header): the whole file
  // is a counted reject, then reset — never an abort, never executed code.
  flipByte(Dir.file(), 8);
  CompileService S2(snapConfig(Dir));
  ASSERT_NE(S2.snapshot(), nullptr);
  EXPECT_EQ(S2.snapshot()->stats().Rejects, 1u);
  EXPECT_EQ(S2.snapshot()->recordCount(), 0u);
  FnHandle H = compileCell(S2, &Cell);
  EXPECT_FALSE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(1), 5);
  EXPECT_EQ(S2.snapshot()->stats().Saves, 1u); // Re-seeded for the next run.
}

TEST(Snapshot, CorruptedRecordDroppedByChecksum) {
  static int Cell = 4;
  TempDir Dir;
  {
    CompileService S1(snapConfig(Dir));
    (void)compileCell(S1, &Cell);
  }
  // Flip the last code byte: lengths still parse, the checksum does not.
  flipByte(Dir.file(), -1);
  CompileService S2(snapConfig(Dir));
  EXPECT_EQ(S2.snapshot()->recordCount(), 0u);
  FnHandle H = compileCell(S2, &Cell);
  EXPECT_FALSE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(1), 5);
}

TEST(Snapshot, CrashMidAppendRecoversValidPrefix) {
  static int CellA = 10, CellB = 20;
  TempDir Dir;
  {
    CompileService S1(snapConfig(Dir));
    (void)compileCell(S1, &CellA);
    CompileOptions Prof; // A different key, so a second record.
    Prof.Profile = true;
    (void)compileCell(S1, &CellA, Prof);
    EXPECT_EQ(S1.snapshot()->stats().Saves, 2u);
  }
  // A crash mid-append leaves a torn tail: chop 5 bytes off the second
  // record. The opener must keep the intact first record and truncate the
  // rest.
  off_t Full = fileSize(Dir.file());
  ASSERT_GT(Full, 5);
  ASSERT_EQ(::truncate(Dir.file().c_str(), Full - 5), 0);

  CompileService S2(snapConfig(Dir));
  EXPECT_EQ(S2.snapshot()->recordCount(), 1u);
  EXPECT_LT(fileSize(Dir.file()), Full - 5); // Torn tail gone.
  FnHandle H = compileCell(S2, &CellB); // Moved cell still loads + patches.
  EXPECT_TRUE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(1), 21);
}

TEST(Snapshot, CompactionRewritesDuplicateRecords) {
  static int Cell = 6;
  TempDir Dir;
  {
    CompileService S1(snapConfig(Dir));
    (void)compileCell(S1, &Cell);
  }
  // Simulate racing writers: duplicate the record region so the file holds
  // the same key twice.
  off_t Full = fileSize(Dir.file());
  {
    int Fd = ::open(Dir.file().c_str(), O_RDWR);
    ASSERT_GE(Fd, 0);
    std::vector<std::uint8_t> Rec(static_cast<std::size_t>(Full) - 16);
    ASSERT_EQ(::pread(Fd, Rec.data(), Rec.size(), 16),
              static_cast<ssize_t>(Rec.size()));
    ASSERT_EQ(::pwrite(Fd, Rec.data(), Rec.size(), Full),
              static_cast<ssize_t>(Rec.size()));
    ::close(Fd);
  }
  ASSERT_EQ(fileSize(Dir.file()), 2 * Full - 16);

  // Threshold 1: any dead byte triggers compaction at open.
  ServiceConfig Cfg = snapConfig(Dir);
  Cfg.SnapshotCompactBytes = 1;
  CompileService S2(Cfg);
  EXPECT_EQ(S2.snapshot()->stats().Compactions, 1u);
  EXPECT_EQ(S2.snapshot()->recordCount(), 1u);
  EXPECT_EQ(fileSize(Dir.file()), Full);
  FnHandle H = compileCell(S2, &Cell);
  EXPECT_TRUE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(1), 7);
}

TEST(Snapshot, UncacheableSpecsNeverPersist) {
  static int Cell = 50;
  TempDir Dir;
  CompileService S(snapConfig(Dir));
  Context C;
  VSpec X = C.paramInt(0);
  // rtEval over memory: the embedded immediate depends on what the cell
  // holds at instantiation time; neither the in-memory cache nor the
  // snapshot may reuse it.
  FnHandle H = S.getOrCompile(
      C, C.ret(Expr(X) + C.rtEval(C.fvInt(&Cell))), EvalType::Int);
  EXPECT_EQ(H->as<int(int)>()(1), 51);
  EXPECT_EQ(S.snapshot()->stats().Saves, 0u);
  EXPECT_EQ(S.snapshot()->stats().Hits, 0u);
  EXPECT_EQ(S.snapshot()->stats().Misses, 0u);
  EXPECT_EQ(fileSize(Dir.file()), 16); // Header only — nothing appended.
}

// --- Size budget ------------------------------------------------------------

TEST(Snapshot, BudgetEvictsOldestAtOpenAndBoundsFile) {
  TempDir Dir;
  std::vector<apps::PowerApp> Apps;
  for (int E = 2; E <= 9; ++E)
    Apps.emplace_back(E);
  {
    CompileService Seed(snapConfig(Dir)); // Unbounded: all eight persist.
    for (apps::PowerApp &A : Apps)
      (void)A.specializeCached(Seed);
    EXPECT_EQ(Seed.snapshot()->stats().Saves, Apps.size());
  }
  off_t Full = fileSize(Dir.file());
  ASSERT_GT(Full, 16);

  // Reopen under a budget of roughly half the file: the opener rewrites
  // keeping the longest *newest* suffix of records that fits (recently
  // written specs are the better warm-start bet), counting the dropped
  // prefix as evictions.
  ServiceConfig Cfg = snapConfig(Dir);
  Cfg.SnapshotBudgetBytes = static_cast<std::size_t>(Full / 2);
  CompileService S(Cfg);
  ASSERT_NE(S.snapshot(), nullptr);
  EXPECT_GT(S.snapshot()->stats().Evictions, 0u);
  EXPECT_LE(fileSize(Dir.file()), Full / 2);
  std::size_t Kept = S.snapshot()->recordCount();
  EXPECT_GT(Kept, 0u);
  EXPECT_LT(Kept, Apps.size());

  // The newest record (highest exponent, appended last) survived; the
  // oldest did not and recompiles.
  FnHandle HNew = Apps.back().specializeCached(S);
  EXPECT_TRUE(HNew->fromSnapshot());
  EXPECT_EQ(HNew->as<int(int)>()(2), 1 << 9);
  FnHandle HOld = Apps.front().specializeCached(S);
  EXPECT_FALSE(HOld->fromSnapshot());
  EXPECT_EQ(HOld->as<int(int)>()(2), 1 << 2);
  // The recompile's re-append may or may not fit the remaining slack, but
  // the file never grows past its budget either way.
  EXPECT_LE(fileSize(Dir.file()),
            static_cast<off_t>(Cfg.SnapshotBudgetBytes));

  // A third service under the same budget still serves what was kept.
  CompileService S3(Cfg);
  EXPECT_TRUE(Apps.back().specializeCached(S3)->fromSnapshot());
}

TEST(Snapshot, BudgetRefusesAppendsThatWouldOverflow) {
  TempDir Dir;
  ServiceConfig Cfg = snapConfig(Dir);
  Cfg.SnapshotBudgetBytes = 64; // Room for the header, not for any record.
  CompileService S(Cfg);
  ASSERT_NE(S.snapshot(), nullptr);
  apps::PowerApp P(13);
  FnHandle H = P.specializeCached(S);
  EXPECT_EQ(H->as<int(int)>()(2), 8192); // Compile unaffected.
  EXPECT_EQ(S.snapshot()->stats().Saves, 0u); // Refused, not saved.
  EXPECT_GT(S.snapshot()->stats().Evictions, 0u);
  EXPECT_EQ(fileSize(Dir.file()), 16); // Header only.
}

// --- Concurrency ------------------------------------------------------------

TEST(Snapshot, ConcurrentLoadAndCompileIsSafe) {
  // Half the working set is pre-seeded on disk, half must be compiled and
  // saved under contention: 8 threads race loads, compiles, single-flight
  // waits, and snapshot appends over one service. Run under TSan in CI.
  TempDir Dir;
  std::vector<apps::PowerApp> Apps;
  for (int E = 2; E <= 9; ++E)
    Apps.emplace_back(E);
  {
    CompileService Seed(snapConfig(Dir));
    for (int I = 0; I < 4; ++I)
      (void)Apps[static_cast<std::size_t>(I)].specializeCached(Seed);
    EXPECT_EQ(Seed.snapshot()->stats().Saves, 4u);
  }

  CompileService S(snapConfig(Dir));
  constexpr unsigned Threads = 8, Iters = 50;
  std::atomic<bool> Go{false};
  std::atomic<unsigned> Wrong{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        ;
      for (unsigned I = 0; I < Iters; ++I) {
        std::size_t App = (T + I) % Apps.size();
        int Exp = 2 + static_cast<int>(App);
        FnHandle H = Apps[App].specializeCached(S);
        int Want = 1;
        for (int K = 0; K < Exp; ++K)
          Want *= 3;
        if (H->as<int(int)>()(3) != Want)
          Wrong.fetch_add(1);
      }
    });
  }
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Wrong.load(), 0u);
  // One entry per exponent; seeded ones loaded, the rest compiled once and
  // appended.
  EXPECT_EQ(S.cache().stats().Insertions, Apps.size());
  EXPECT_EQ(S.cache().stats().SnapshotLoads, 4u);
  EXPECT_EQ(S.snapshot()->stats().Hits, 4u);
  EXPECT_EQ(S.snapshot()->stats().Saves, 4u);

  // And the post-race snapshot serves the whole set to the next comer.
  CompileService After(snapConfig(Dir));
  for (std::size_t I = 0; I < Apps.size(); ++I)
    (void)Apps[I].specializeCached(After);
  EXPECT_EQ(After.snapshot()->stats().Hits, Apps.size());
  EXPECT_EQ(After.cache().stats().SnapshotLoads, Apps.size());
}

// --- Shared directory across test-suite runs --------------------------------

// CI points TICKC_SNAPSHOT_DIR at one directory and runs the whole suite
// twice: the first pass seeds this spec, the second revives it — a
// cross-process warm start exercised by the real test harness. With the
// variable unset the test is self-contained in a temp dir (the first
// service seeds, so the assertions below hold either way).
TEST(Snapshot, SharedDirAcrossRunsServesWithoutRecompile) {
  TempDir Fallback;
  const char *Env = std::getenv("TICKC_SNAPSHOT_DIR");
  ServiceConfig Cfg;
  Cfg.SnapshotDir = Env && *Env ? Env : Fallback.Path.c_str();

  apps::PowerApp Power(21); // Portable: pure integer math, no addresses.
  {
    CompileService First(Cfg);
    ASSERT_NE(First.snapshot(), nullptr);
    EXPECT_EQ(Power.specializeCached(First)->as<int(int)>()(2), 1 << 21);
    persist::SnapshotStats S = First.snapshot()->stats();
    // Either this run seeded the record or a previous run already had.
    EXPECT_EQ(S.Hits + S.Saves, 1u);
    EXPECT_EQ(S.Rejects, 0u);
  }

  // The directory is warm now no matter what: a fresh service must serve
  // the spec from the snapshot with zero recompiles.
  CompileService Second(Cfg);
  EXPECT_EQ(Power.specializeCached(Second)->as<int(int)>()(2), 1 << 21);
  persist::SnapshotStats S2 = Second.snapshot()->stats();
  EXPECT_EQ(S2.Hits, 1u);
  EXPECT_EQ(S2.Saves, 0u);
  EXPECT_EQ(Second.cache().stats().SnapshotLoads, 1u);
}

// --- Hostile-byte sweep -----------------------------------------------------

namespace {

std::vector<std::uint8_t> readFileBytes(const std::string &File) {
  std::vector<std::uint8_t> Buf;
  int Fd = ::open(File.c_str(), O_RDONLY);
  if (Fd < 0)
    return Buf;
  struct stat St;
  if (::fstat(Fd, &St) == 0) {
    Buf.resize(static_cast<std::size_t>(St.st_size));
    if (::pread(Fd, Buf.data(), Buf.size(), 0) !=
        static_cast<ssize_t>(Buf.size()))
      Buf.clear();
  }
  ::close(Fd);
  return Buf;
}

void writeFileBytes(const std::string &File,
                    const std::vector<std::uint8_t> &Buf) {
  int Fd = ::open(File.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::pwrite(Fd, Buf.data(), Buf.size(), 0),
            static_cast<ssize_t>(Buf.size()));
  ::close(Fd);
}

/// Rewrites every record's save timestamp to \p SavedAt and fixes the
/// checksum up to match (the timestamp is checksum-covered — the sweep test
/// proves a stale checksum is fatal; the TTL tests need a record that is
/// *valid* but old).
void backdateRecords(const std::string &File, std::uint32_t SavedAt) {
  std::vector<std::uint8_t> Buf = readFileBytes(File);
  ASSERT_GT(Buf.size(), 16u);
  std::size_t Off = 16; // File header: magic + build fingerprint.
  while (Off + 48 <= Buf.size()) {
    std::uint32_t Total;
    std::memcpy(&Total, Buf.data() + Off + 4, 4);
    if (Total < 48 || Off + Total > Buf.size())
      break;
    std::memcpy(Buf.data() + Off + 44, &SavedAt, 4); // SavedAt
    std::uint64_t Sum =
        support::hashBytes(Buf.data() + Off + 24, Total - 24);
    std::memcpy(Buf.data() + Off + 16, &Sum, 8); // Checksum
    Off += Total;
  }
  writeFileBytes(File, Buf);
}

} // namespace

TEST(Snapshot, EveryByteFlipRejectsOrRecompilesNeverAdopts) {
  // The deterministic corruption sweep: for every single byte of the
  // snapshot file — header, record header, key, refs, relocs, code — a
  // flipped copy must end in reject-and-recompile or a checksum/probe miss.
  // Never a crash, never adoption of altered bytes. The layered defense
  // (fingerprint, structural bounds, checksum over everything after the
  // record header, byte-exact key compare, flow-sensitive admission) must
  // leave no window.
  static int Cell = 77;
  TempDir Dir;
  {
    CompileService Seed(snapConfig(Dir));
    EXPECT_EQ(compileCell(Seed, &Cell)->as<int(int)>()(1), 78);
    EXPECT_EQ(Seed.snapshot()->stats().Saves, 1u);
  }
  std::vector<std::uint8_t> Pristine = readFileBytes(Dir.file());
  ASSERT_GT(Pristine.size(), 16u);

  unsigned Adopted = 0;
  for (std::size_t Off = 0; Off < Pristine.size(); ++Off) {
    writeFileBytes(Dir.file(), Pristine);
    flipByte(Dir.file(), static_cast<long>(Off));
    CompileService S(snapConfig(Dir));
    ASSERT_NE(S.snapshot(), nullptr) << "flip at " << Off;
    FnHandle H = compileCell(S, &Cell);
    ASSERT_NE(H, nullptr) << "flip at " << Off;
    EXPECT_EQ(H->as<int(int)>()(5), 82) << "flip at " << Off;
    if (H->fromSnapshot())
      ++Adopted;
  }
  EXPECT_EQ(Adopted, 0u) << "a flipped record was adopted";
}

// --- Per-entry TTL ----------------------------------------------------------

TEST(Snapshot, TtlExpiredRecordSkippedAtOpenAndReseeded) {
  static int Cell = 31;
  TempDir Dir;
  {
    CompileService Seed(snapConfig(Dir));
    EXPECT_EQ(compileCell(Seed, &Cell)->as<int(int)>()(1), 32);
  }
  // Age the record far past a one-hour TTL (timestamp stays checksum-valid).
  backdateRecords(Dir.file(),
                  static_cast<std::uint32_t>(::time(nullptr)) - 100000);

  ServiceConfig Cfg = snapConfig(Dir);
  Cfg.SnapshotTtlSec = 3600;
  CompileService S(Cfg);
  ASSERT_NE(S.snapshot(), nullptr);
  // The expired record was never indexed: the probe is a plain miss, the
  // compile runs fresh and re-seeds the file with a new timestamp.
  EXPECT_EQ(S.snapshot()->recordCount(), 0u);
  FnHandle H = compileCell(S, &Cell);
  EXPECT_FALSE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(1), 32);
  EXPECT_EQ(S.snapshot()->stats().Saves, 1u);

  // The re-seeded record is fresh: the next service under the same TTL
  // serves it.
  CompileService S2(Cfg);
  FnHandle H2 = compileCell(S2, &Cell);
  EXPECT_TRUE(H2->fromSnapshot());
  EXPECT_EQ(H2->as<int(int)>()(1), 32);
}

TEST(Snapshot, TtlZeroAndUnexpiredRecordsStillServe) {
  static int Cell = 13;
  TempDir Dir;
  {
    CompileService Seed(snapConfig(Dir));
    (void)compileCell(Seed, &Cell);
  }
  backdateRecords(Dir.file(),
                  static_cast<std::uint32_t>(::time(nullptr)) - 100000);

  // TTL off (the default): age is irrelevant.
  CompileService NoTtl(snapConfig(Dir));
  EXPECT_TRUE(compileCell(NoTtl, &Cell)->fromSnapshot());

  // TTL comfortably larger than the record's age: still served.
  ServiceConfig Wide = snapConfig(Dir);
  Wide.SnapshotTtlSec = 1000000;
  CompileService S(Wide);
  FnHandle H = compileCell(S, &Cell);
  EXPECT_TRUE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(2), 15);
  EXPECT_EQ(S.snapshot()->stats().Expired, 0u);
}

TEST(Snapshot, TtlAgeOutDuringProcessCountsExpiredAndRecompiles) {
  static int Cell = 91;
  TempDir Dir;
  {
    CompileService Seed(snapConfig(Dir));
    (void)compileCell(Seed, &Cell);
  }
  // Fresh at open under a 1-second TTL, expired by probe time: findRecord
  // re-checks per probe so long-lived processes do not serve stale records
  // forever.
  ServiceConfig Cfg = snapConfig(Dir);
  Cfg.SnapshotTtlSec = 1;
  CompileService S(Cfg);
  EXPECT_EQ(S.snapshot()->recordCount(), 1u);
  ::sleep(2);
  FnHandle H = compileCell(S, &Cell);
  EXPECT_FALSE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(9), 100);
  // ≥: tier-0 promotion may probe the same key more than once.
  EXPECT_GE(S.snapshot()->stats().Expired, 1u);
  EXPECT_EQ(S.snapshot()->stats().Hits, 0u);
}

TEST(Snapshot, TtlCompactionDropsExpiredRecords) {
  static int Cell = 55;
  TempDir Dir;
  {
    CompileService Seed(snapConfig(Dir));
    (void)compileCell(Seed, &Cell);
    CompileOptions Prof; // A second key, so a second record.
    Prof.Profile = true;
    (void)compileCell(Seed, &Cell, Prof);
    EXPECT_EQ(Seed.snapshot()->stats().Saves, 2u);
  }
  off_t Full = fileSize(Dir.file());
  ASSERT_GT(Full, 16);
  backdateRecords(Dir.file(),
                  static_cast<std::uint32_t>(::time(nullptr)) - 100000);

  // Expired records are dead bytes: with a 1-byte compaction threshold the
  // opener rewrites the live set — which is empty — down to the header.
  ServiceConfig Cfg = snapConfig(Dir);
  Cfg.SnapshotTtlSec = 3600;
  Cfg.SnapshotCompactBytes = 1;
  CompileService S(Cfg);
  ASSERT_NE(S.snapshot(), nullptr);
  EXPECT_EQ(S.snapshot()->stats().Compactions, 1u);
  EXPECT_EQ(S.snapshot()->recordCount(), 0u);
  EXPECT_EQ(fileSize(Dir.file()), 16);
  // And the working set re-seeds cleanly.
  FnHandle H = compileCell(S, &Cell);
  EXPECT_FALSE(H->fromSnapshot());
  EXPECT_EQ(H->as<int(int)>()(1), 56);
  EXPECT_EQ(S.snapshot()->stats().Saves, 1u);
}
