//===- tests/frontend_test.cpp - Tick-C language tests --------------------===//
//
// Runs Tick-C programs end to end: the static half interpreted, backquoted
// code dynamically compiled to machine code. Includes the paper's own §3
// examples.
//
//===----------------------------------------------------------------------===//

#include "frontend/Interp.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace tcc;
using namespace tcc::core;
using namespace tcc::frontend;

namespace {

class TickCBothBackends : public ::testing::TestWithParam<BackendKind> {
protected:
  std::pair<int, std::string> run(const std::string &Src) {
    return runTickC(Src, GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, TickCBothBackends,
                         ::testing::Values(BackendKind::VCode,
                                           BackendKind::ICode),
                         [](const auto &Info) {
                           return Info.param == BackendKind::VCode ? "VCode"
                                                                   : "ICode";
                         });

TEST_P(TickCBothBackends, HelloWorld) {
  // Paper §3: dynamically specify and instantiate a hello-world procedure.
  auto [Code, Out] = run(R"(
    int main() {
      void cspec hello = `{ print_str("hello world\n"); };
      void* f = compile(hello, void);
      f();
      return 0;
    }
  )");
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "hello world\n");
}

TEST_P(TickCBothBackends, ComposeFourPlusFive) {
  // Paper §3: int cspec c1 = `4, c2 = `5; c = `(c1 + c2).
  auto [Code, Out] = run(R"(
    int main() {
      int cspec c1 = `4;
      int cspec c2 = `5;
      int cspec c = `(c1 + c2);
      int* f = compile(c, int);
      return f();
    }
  )");
  EXPECT_EQ(Code, 9);
  (void)Out;
}

TEST_P(TickCBothBackends, DollarBindingTime) {
  // Paper §3: $x binds at specification time; the free variable x at run
  // time. Prints "$x = 1, x = 14".
  auto [Code, Out] = run(R"(
    int main() {
      int x = 1;
      void cspec spec = `{
        print_str("$x = "); print_int($x);
        print_str(", x = "); print_int(x);
      };
      void* fp = compile(spec, void);
      x = 14;
      fp();
      return 0;
    }
  )");
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "$x = 1, x = 14");
}

TEST_P(TickCBothBackends, DynamicParamsAndLoop) {
  // Build pow-like code with params, a dynamic local, and a loop.
  auto [Code, Out] = run(R"(
    int main() {
      int vspec x = param(int, 0);
      int vspec n = param(int, 1);
      int cspec body = `{
        int r = 1;
        int i;
        for (i = 0; i < n; i++)
          r = r * x;
        return r;
      };
      int* p = compile(body, int);
      print_int(p(3, 4));
      print_str(" ");
      print_int(p(2, 10));
      return 0;
    }
  )");
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "81 1024");
}

TEST_P(TickCBothBackends, SpecTimeCompositionLoop) {
  // The paper's first dot-product style: static loop composing cspecs.
  auto [Code, Out] = run(R"(
    int main() {
      int* row = alloc_int(4);
      row[0] = 2; row[1] = 0; row[2] = 3; row[3] = 1;
      int* vspec col = param(int*, 0);
      int cspec sum = `0;
      int k;
      for (k = 0; k < 4; k++) {
        if (row[k] != 0)
          sum = `(sum + col[$k] * $(row[k]));
      }
      int cspec body = `{ return sum; };
      int* dot = compile(body, int);
      int* c = alloc_int(4);
      c[0] = 10; c[1] = 20; c[2] = 30; c[3] = 40;
      return dot(c);
    }
  )");
  EXPECT_EQ(Code, 10 * 2 + 30 * 3 + 40 * 1);
  (void)Out;
}

TEST_P(TickCBothBackends, FreeVariableWrites) {
  // Dynamic code writing through a free variable.
  auto [Code, Out] = run(R"(
    int counter = 0;
    int main() {
      void cspec bump = `{ counter = counter + 5; };
      void* f = compile(bump, void);
      f(); f(); f();
      return counter;
    }
  )");
  EXPECT_EQ(Code, 15);
  (void)Out;
}

TEST_P(TickCBothBackends, RunTimeConstantFolding) {
  // $a * $b folds at instantiation time; result hardwired.
  auto [Code, Out] = run(R"(
    int main() {
      int a = 6;
      int b = 7;
      int cspec c = `($a * $b + 0);
      int* f = compile(c, int);
      a = 100; b = 100;
      return f();
    }
  )");
  EXPECT_EQ(Code, 42);
  (void)Out;
}

TEST_P(TickCBothBackends, DoubleDynamicCode) {
  auto [Code, Out] = run(R"(
    int main() {
      double vspec x = param(double, 0);
      double cspec c = `(x * x + 1.5);
      double* f = compile(c, double);
      print_double(f(2.0));
      return 0;
    }
  )");
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "5.5");
}

TEST_P(TickCBothBackends, StaticInterpreterFeatures) {
  // No dynamic code: exercise the static half (functions, recursion,
  // arrays, while, compound assignment, ternary).
  auto [Code, Out] = run(R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      int* a = alloc_int(10);
      int i = 0;
      while (i < 10) { a[i] = fib(i); i++; }
      int sum = 0;
      for (i = 0; i < 10; i++) sum += a[i];
      print_int(sum);
      print_str(" ");
      print_int(sum > 80 ? 1 : 0);
      return 0;
    }
  )");
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out, "88 1"); // fib(0..9) sums to 88
}

TEST_P(TickCBothBackends, GeneratedCodeCallsGeneratedCode) {
  // compile() one function, then splice calls to it into a second.
  auto [Code, Out] = run(R"(
    int main() {
      int vspec a = param(int, 0);
      int* twice = compile(`(a + a), int);
      int vspec b = param(int, 0);
      int cspec c = `(twice(b) + 1);
      int* f = compile(c, int);
      return f(20);
    }
  )");
  EXPECT_EQ(Code, 41);
  (void)Out;
}

TEST_P(TickCBothBackends, QueryCompilerInTickC) {
  // A miniature of the paper's query benchmark written *in* Tick-C.
  auto [Code, Out] = run(R"(
    int main() {
      int* ages = alloc_int(6);
      ages[0] = 25; ages[1] = 45; ages[2] = 61;
      ages[3] = 30; ages[4] = 52; ages[5] = 44;
      int lo = 40;
      int hi = 60;
      int vspec v = param(int, 0);
      int cspec match = `(v > $lo && v < $hi);
      int* q = compile(match, int);
      int n = 0;
      int i;
      for (i = 0; i < 6; i++)
        if (q(ages[i])) n++;
      return n;
    }
  )");
  EXPECT_EQ(Code, 3); // 45, 52, 44
  (void)Out;
}

TEST(TickCParser, RejectsGarbage) {
  EXPECT_EXIT(runTickC("int main( { return 0; }"),
              ::testing::ExitedWithCode(1), "syntax error");
  EXPECT_EXIT(runTickC("int main() { return x; }"),
              ::testing::ExitedWithCode(1), "undefined variable");
  EXPECT_EXIT(runTickC("int main() { int x = $5; return x; }"),
              ::testing::ExitedWithCode(1), "outside a tick");
}

TEST(TickCInterp, DynamicInstructionsCounted) {
  Interp I(parseProgram(R"(
    int main() {
      int cspec c = `(1 + 2);
      int* f = compile(c, int);
      return f();
    }
  )"));
  EXPECT_EQ(I.runMain(), 3);
  EXPECT_GT(I.dynamicInstructions(), 0u);
}

} // namespace
