//===- tests/tier0_test.cpp - Interpreter tier-0 tests --------------------===//
//
// Covers the interpreted tier (src/core/SpecInterp + the tier-0 half of
// src/tier): zero-latency slot creation answering from the spec-tree
// interpreter, the background baseline compile and entry swap, synchronous
// fallbacks (tier 0 disabled, uninterpretable specs, full queue), the
// execution profile (trip counts, roll/unroll decisions, the SpecKey
// digest), profile-directed unrolling in the optimizing compile, and an
// 8-thread swap-race stress (run under -fsanitize=thread in CI).
//
//===----------------------------------------------------------------------===//

#include "cache/CompileService.h"
#include "cache/SpecKey.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "core/SpecInterp.h"
#include "tier/Tier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;
using namespace tcc::cache;
using namespace tcc::tier;

namespace {

TierConfig config(std::uint64_t Threshold, unsigned Workers = 1) {
  TierConfig TC;
  TC.Workers = Workers;
  TC.PromoteThreshold = Threshold;
  return TC;
}

/// `f(x) = N * x`, computed by an N-trip counting loop — the shape whose
/// trip count the tier-0 profile measures.
Stmt buildLoopSpec(Context &C, int N) {
  VSpec X = C.paramInt(0);
  VSpec Acc = C.localInt();
  VSpec I = C.localInt();
  return C.block({C.assign(Acc, C.intConst(0)),
                  C.forStmt(I, C.intConst(0), vcode::CmpKind::LtS,
                            C.intConst(N), C.intConst(1),
                            C.assign(Acc, Expr(Acc) + Expr(X))),
                  C.ret(Expr(Acc))});
}

SpecBuild loopBuild(int N) {
  return [N](Context &C) { return buildLoopSpec(C, N); };
}

// --- Slot lifecycle ----------------------------------------------------------

TEST(Tier0, SlotBornInterpretedThenSwapsToBaseline) {
  CompileService S;
  TierManager TM(config(1 << 20)); // Promotion out of the picture.
  TieredFnHandle TF =
      S.getOrCompileTiered(loopBuild(16), EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  EXPECT_TRUE(TF->isTier0());

  // The slot answers immediately — interpreted or compiled, whichever tier
  // the background race has reached — and always correctly.
  EXPECT_EQ(TF->call<int(int)>(3), 48);
  EXPECT_EQ(TF->call<int(int)>(-2), -32);

  // The baseline lands without any further calls; the swap is observable.
  ASSERT_TRUE(TF->waitCompiled());
  EXPECT_TRUE(TF->compiled());
  EXPECT_EQ(TF->state(), TierState::Baseline);
  EXPECT_GT(TF->tier0SwapNanos(), 0u);
  FnHandle H = TF->handle();
  ASSERT_TRUE(H);
  EXPECT_EQ(H->as<int(int)>()(3), 48);
  EXPECT_EQ(TF->call<int(int)>(5), 80);
}

TEST(Tier0, DisabledCreatesBaselineSynchronously) {
  ServiceConfig Cfg;
  Cfg.EnableTier0 = false;
  CompileService S(Cfg);
  TierManager TM(config(1 << 20));
  TieredFnHandle TF =
      S.getOrCompileTiered(loopBuild(16), EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  // Pre-tier-0 behavior: machine code exists before getOrCompileTiered
  // returns.
  EXPECT_FALSE(TF->isTier0());
  EXPECT_TRUE(TF->compiled());
  EXPECT_EQ(TF->state(), TierState::Baseline);
  EXPECT_TRUE(TF->handle());
  EXPECT_EQ(TF->tier0SwapNanos(), 0u);
  EXPECT_EQ(TF->call<int(int)>(3), 48);
}

TEST(Tier0, UninterpretableSpecFallsBackSynchronously) {
  CompileService S;
  TierManager TM(config(1 << 20));
  // Dynamic labels are outside the interpreter's subset: the slot must be
  // born with a synchronously compiled baseline instead.
  TieredFnHandle TF = S.getOrCompileTiered(
      [](Context &C) {
        VSpec X = C.paramInt(0);
        VSpec A = C.localInt();
        DynLabel L = C.newLabel();
        return C.block({C.assign(A, Expr(X) + C.intConst(1)),
                        C.gotoLabel(L), C.assign(A, C.intConst(0)),
                        C.labelHere(L), C.ret(Expr(A))});
      },
      EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  EXPECT_FALSE(TF->isTier0());
  EXPECT_TRUE(TF->compiled());
  EXPECT_EQ(TF->call<int(int)>(41), 42);
}

TEST(Tier0, QueueFullFallsBackToSynchronousBaseline) {
  TierConfig TC = config(1 << 20);
  TC.QueueCapacity = 0; // The background compile can never be enqueued.
  CompileService S;
  TierManager TM(TC);
  TieredFnHandle TF =
      S.getOrCompileTiered(loopBuild(8), EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  // The slot still counts as tier 0 but never hands out an interpreted
  // call: the creator compiled the baseline itself rather than strand the
  // slot on the interpreter forever.
  EXPECT_TRUE(TF->compiled());
  EXPECT_EQ(TF->state(), TierState::Baseline);
  EXPECT_EQ(TF->call<int(int)>(4), 32);
}

TEST(Tier0, PromotesThroughAllThreeTiers) {
  CompileService S;
  TierManager TM(config(16, 2));
  TieredFnHandle TF =
      S.getOrCompileTiered(loopBuild(24), EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  EXPECT_TRUE(TF->isTier0());
  // Cross the promotion threshold while the slot may still be interpreted:
  // the trigger must carry across the baseline swap, not reset.
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(TF->call<int(int)>(2), 48);
  ASSERT_TRUE(TF->waitPromoted());
  EXPECT_EQ(TF->state(), TierState::Promoted);
  EXPECT_STREQ(TF->handle()->profile()->Backend.load(), "icode");
  EXPECT_EQ(TF->call<int(int)>(2), 48);
}

// --- Execution profile -------------------------------------------------------

TEST(Tier0, ProfileMeasuresTripCountsAndDecides) {
  // Small loop: measured MaxTrip bounds the unroll. Large loop: past the
  // cutoff, the decision is to roll.
  {
    Context C;
    Stmt Body = buildLoopSpec(C, 12);
    ASSERT_TRUE(specInterpretable(C, Body, EvalType::Int));
    Tier0Profile P;
    SpecInterp Interp(C, Body, EvalType::Int, &P);
    std::int64_t A = 7;
    InterpResult R = Interp.run(&A, 1, nullptr, 0);
    EXPECT_EQ(R.I, 84);
    ASSERT_EQ(P.NumLoops, 1u);
    EXPECT_EQ(P.Loops[0].Entries.load(), 1u);
    EXPECT_EQ(P.Loops[0].MaxTrip.load(), 12u);
    Tier0ProfileSnapshot Snap = snapshotTier0(P);
    ASSERT_EQ(Snap.NumLoops, 1u);
    EXPECT_EQ(Snap.Decision[0], 2u); // Unroll, bounded by the measurement.
    EXPECT_EQ(Snap.MaxTrip[0], 12u);
  }
  {
    Context C;
    Stmt Body = buildLoopSpec(C, 4096); // Past Tier0Profile::UnrollCutoff.
    Tier0Profile P;
    SpecInterp Interp(C, Body, EvalType::Int, &P);
    std::int64_t A = 1;
    EXPECT_EQ(Interp.run(&A, 1, nullptr, 0).I, 4096);
    Tier0ProfileSnapshot Snap = snapshotTier0(P);
    ASSERT_EQ(Snap.NumLoops, 1u);
    EXPECT_EQ(Snap.Decision[0], 1u); // Roll: unrolling 4096 copies loses.
  }
  {
    // Unobserved loops keep the static heuristic.
    Context C;
    Stmt Body = buildLoopSpec(C, 8);
    Tier0Profile P;
    SpecInterp Interp(C, Body, EvalType::Int, &P);
    Tier0ProfileSnapshot Snap = snapshotTier0(P); // No run() first.
    ASSERT_EQ(Snap.NumLoops, 1u);
    EXPECT_EQ(Snap.Decision[0], 0u);
  }
}

TEST(Tier0, TripProfileDigestEntersSpecKey) {
  Context C;
  Stmt Body = buildLoopSpec(C, 8);
  CompileOptions Plain;
  SpecKey KPlain = buildSpecKey(C, Body, EvalType::Int, Plain);

  Tier0ProfileSnapshot Snap;
  Snap.NumLoops = 1;
  Snap.Decision[0] = 2;
  Snap.MaxTrip[0] = 8;
  CompileOptions Prof = Plain;
  Prof.TripProfile = &Snap;
  SpecKey KProf = buildSpecKey(C, Body, EvalType::Int, Prof);
  // A profiled compile must never alias the unprofiled one in the cache.
  EXPECT_FALSE(KPlain == KProf);

  // And two different decisions are two different keys.
  Tier0ProfileSnapshot Roll = Snap;
  Roll.Decision[0] = 1;
  CompileOptions ProfRoll = Plain;
  ProfRoll.TripProfile = &Roll;
  SpecKey KRoll = buildSpecKey(C, Body, EvalType::Int, ProfRoll);
  EXPECT_FALSE(KProf == KRoll);
}

TEST(Tier0, ProfiledRollDecisionChangesGeneratedCode) {
  // A 64-trip constant loop unrolls under the static heuristic
  // (UnrollLimit defaults far above 64). A profile that says "roll" must
  // override it and produce the compact runtime-loop body instead.
  Context C;
  Stmt Body = buildLoopSpec(C, 64);
  CompileOptions Static;
  Static.Backend = BackendKind::ICode;
  CompiledFn FStatic = compileFn(C, Body, EvalType::Int, Static);
  ASSERT_TRUE(FStatic.valid());

  Tier0ProfileSnapshot Snap;
  Snap.NumLoops = 1;
  Snap.Decision[0] = 1; // Roll.
  CompileOptions Profiled = Static;
  Profiled.TripProfile = &Snap;
  CompiledFn FProf = compileFn(C, Body, EvalType::Int, Profiled);
  ASSERT_TRUE(FProf.valid());

  EXPECT_EQ(FStatic.as<int(int)>()(3), 192);
  EXPECT_EQ(FProf.as<int(int)>()(3), 192);
  // The rolled body is the measurably smaller one.
  EXPECT_LT(FProf.stats().CodeBytes, FStatic.stats().CodeBytes);
}

TEST(Tier0, SlotProfileFeedsThePromotedCompile) {
  ServiceConfig Cfg; // Tier 0 + profiling on by default.
  CompileService S(Cfg);
  TierManager TM(config(8, 2));
  TieredFnHandle TF = S.getOrCompileTiered(loopBuild(4096), EvalType::Int,
                                           CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  ASSERT_TRUE(TF->isTier0());
  ASSERT_NE(TF->tier0Profile(), nullptr);

  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(TF->call<int(int)>(1), 4096);
  ASSERT_TRUE(TF->waitPromoted());
  EXPECT_EQ(TF->call<int(int)>(1), 4096);

  // Whatever mix of interpreted and compiled calls got us here, any
  // interpreted entry recorded the true trip count, and the frozen
  // decision for a 4096-trip loop is "roll".
  const Tier0Profile *P = TF->tier0Profile();
  if (P->Loops[0].Entries.load() > 0) {
    EXPECT_EQ(P->Loops[0].MaxTrip.load(), 4096u);
    EXPECT_EQ(snapshotTier0(*P).Decision[0], 1u);
  }
}

TEST(Tier0, ProfileDisabledSlotStillWorks) {
  ServiceConfig Cfg;
  Cfg.EnableTier0Profile = false;
  CompileService S(Cfg);
  TierManager TM(config(8, 2));
  TieredFnHandle TF =
      S.getOrCompileTiered(loopBuild(32), EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);
  EXPECT_TRUE(TF->isTier0());
  EXPECT_EQ(TF->tier0Profile(), nullptr);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(TF->call<int(int)>(2), 64);
  ASSERT_TRUE(TF->waitPromoted());
  EXPECT_EQ(TF->call<int(int)>(2), 64);
}

// --- Environment knobs -------------------------------------------------------

TEST(Tier0, EnvKnobsReachServiceConfig) {
  ASSERT_EQ(setenv("TICKC_TIER0", "0", 1), 0);
  ASSERT_EQ(setenv("TICKC_TIER0_PROFILE", "0", 1), 0);
  ASSERT_EQ(setenv("TICKC_SNAPSHOT_BUDGET", "12345", 1), 0);
  ServiceConfig C = ServiceConfig::fromEnv();
  EXPECT_FALSE(C.EnableTier0);
  EXPECT_FALSE(C.EnableTier0Profile);
  EXPECT_EQ(C.SnapshotBudgetBytes, 12345u);
  ASSERT_EQ(setenv("TICKC_TIER0", "1", 1), 0);
  ASSERT_EQ(setenv("TICKC_TIER0_PROFILE", "1", 1), 0);
  ServiceConfig D = ServiceConfig::fromEnv();
  EXPECT_TRUE(D.EnableTier0);
  EXPECT_TRUE(D.EnableTier0Profile);
  unsetenv("TICKC_TIER0");
  unsetenv("TICKC_TIER0_PROFILE");
  unsetenv("TICKC_SNAPSHOT_BUDGET");
}

// --- Concurrency -------------------------------------------------------------

TEST(Tier0, ConcurrentCallersAcrossBothSwaps) {
  // 8 threads hammer the slot from its interpreted birth through the
  // baseline swap and the ICODE promotion. Run under TSan in CI: the
  // Entry null -> baseline transition is the newest race surface.
  CompileService S;
  TierManager TM(config(256, 2));
  TieredFnHandle TF =
      S.getOrCompileTiered(loopBuild(16), EvalType::Int, CompileOptions(), &TM);
  ASSERT_TRUE(TF);

  constexpr unsigned NumThreads = 8;
  std::atomic<unsigned> Failures{0};
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < 4000 && !Stop.load(); ++I) {
        int X = static_cast<int>(1 + (T + I) % 7);
        if (TF->call<int(int)>(X) != 16 * X)
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  bool Promoted = TF->waitPromoted();
  Stop.store(true);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(Promoted);
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_STREQ(TF->handle()->profile()->Backend.load(), "icode");
}

TEST(Tier0, ManyFreshSlotsUnderConcurrentLoad) {
  // Distinct specs churn the queue while callers race each slot's own
  // swaps — the manager's worker pool and the per-slot state machines must
  // not interfere across slots.
  CompileService S;
  TierManager TM(config(32, 2));
  constexpr unsigned NumSlots = 12;
  std::vector<TieredFnHandle> Slots;
  for (unsigned N = 0; N < NumSlots; ++N)
    Slots.push_back(S.getOrCompileTiered(loopBuild(static_cast<int>(N + 1)),
                                         EvalType::Int, CompileOptions(),
                                         &TM));
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T) {
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < 2000; ++I) {
        unsigned Slot = (T + I) % NumSlots;
        if (Slots[Slot]->call<int(int)>(3) !=
            3 * static_cast<int>(Slot + 1))
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  // Every slot ends with machine code installed (swap or sync fallback).
  for (TieredFnHandle &TF : Slots)
    EXPECT_TRUE(TF->waitCompiled());
}

} // namespace
