//===- tests/observability_test.cpp - Tracing/metrics/profiling tests -----===//
//
// Covers the observability subsystem end to end: the trace exporter (valid
// JSON, balanced begin/end pairs, multi-thread interleaving), histogram
// bucketing edges, PhaseTimer re-entrancy, the phase-sum-vs-total report
// invariant, cache metric mirroring, and generated-code invocation
// profiling under concurrent load on both back ends.
//
//===----------------------------------------------------------------------===//

#include "observability/Metrics.h"
#include "observability/Names.h"
#include "observability/Profile.h"
#include "observability/Report.h"
#include "observability/Trace.h"

#include "apps/Power.h"
#include "cache/CompileService.h"
#include "core/Compile.h"
#include "core/Context.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace tcc;
using namespace tcc::core;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON parser — enough to validate the exported trace without
// pulling in a dependency. Throws std::runtime_error on malformed input.
//===----------------------------------------------------------------------===//

struct JValue {
  enum Kind { Obj, Arr, Str, Num, Bool, Null } K = Null;
  std::map<std::string, JValue> O;
  std::vector<JValue> A;
  std::string S;
  double N = 0;
  bool B = false;

  const JValue &at(const std::string &Key) const {
    auto It = O.find(Key);
    if (It == O.end())
      throw std::runtime_error("missing key: " + Key);
    return It->second;
  }
};

class JParser {
public:
  explicit JParser(const std::string &Text) : T(Text) {}

  JValue parseDocument() {
    JValue V = parseValue();
    ws();
    if (P != T.size())
      throw std::runtime_error("trailing garbage after JSON document");
    return V;
  }

private:
  const std::string &T;
  std::size_t P = 0;

  [[noreturn]] void fail(const char *Msg) {
    throw std::runtime_error(std::string(Msg) + " at offset " +
                             std::to_string(P));
  }
  void ws() {
    while (P < T.size() &&
           (T[P] == ' ' || T[P] == '\n' || T[P] == '\t' || T[P] == '\r'))
      ++P;
  }
  char peek() {
    if (P >= T.size())
      fail("unexpected end");
    return T[P];
  }
  void expect(char C) {
    if (P >= T.size() || T[P] != C)
      fail("unexpected character");
    ++P;
  }

  JValue parseValue() {
    ws();
    char C = peek();
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    if (C == 't' || C == 'f')
      return parseBool();
    if (C == 'n')
      return parseNull();
    return parseNumber();
  }

  JValue parseObject() {
    JValue V;
    V.K = JValue::Obj;
    expect('{');
    ws();
    if (peek() == '}') {
      ++P;
      return V;
    }
    for (;;) {
      ws();
      JValue Key = parseString();
      ws();
      expect(':');
      V.O[Key.S] = parseValue();
      ws();
      if (peek() == ',') {
        ++P;
        continue;
      }
      expect('}');
      return V;
    }
  }

  JValue parseArray() {
    JValue V;
    V.K = JValue::Arr;
    expect('[');
    ws();
    if (peek() == ']') {
      ++P;
      return V;
    }
    for (;;) {
      V.A.push_back(parseValue());
      ws();
      if (peek() == ',') {
        ++P;
        continue;
      }
      expect(']');
      return V;
    }
  }

  JValue parseString() {
    JValue V;
    V.K = JValue::Str;
    expect('"');
    while (peek() != '"') {
      char C = T[P++];
      if (C == '\\') {
        char E = peek();
        ++P;
        switch (E) {
        case 'n': V.S += '\n'; break;
        case 't': V.S += '\t'; break;
        case '"': V.S += '"'; break;
        case '\\': V.S += '\\'; break;
        case '/': V.S += '/'; break;
        case 'u': // Skip 4 hex digits; content is irrelevant here.
          for (int I = 0; I < 4; ++I)
            ++P;
          break;
        default: fail("bad escape");
        }
      } else {
        V.S += C;
      }
    }
    ++P;
    return V;
  }

  JValue parseNumber() {
    std::size_t Start = P;
    if (peek() == '-')
      ++P;
    while (P < T.size() && (std::isdigit(static_cast<unsigned char>(T[P])) ||
                            T[P] == '.' || T[P] == 'e' || T[P] == 'E' ||
                            T[P] == '+' || T[P] == '-'))
      ++P;
    if (P == Start)
      fail("expected number");
    JValue V;
    V.K = JValue::Num;
    V.N = std::stod(T.substr(Start, P - Start));
    return V;
  }

  JValue parseBool() {
    JValue V;
    V.K = JValue::Bool;
    if (T.compare(P, 4, "true") == 0) {
      V.B = true;
      P += 4;
    } else if (T.compare(P, 5, "false") == 0) {
      P += 5;
    } else {
      fail("expected bool");
    }
    return V;
  }

  JValue parseNull() {
    if (T.compare(P, 4, "null") != 0)
      fail("expected null");
    P += 4;
    return JValue{};
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string tracePath(const char *Name) {
  return ::testing::TempDir() + Name;
}

/// Parses \p Path as a Chrome trace and returns the traceEvents array after
/// structural validation (required keys, B/E phases, per-tid balance).
JValue loadAndValidateTrace(const std::string &Path) {
  JValue Doc = JParser(slurp(Path)).parseDocument();
  EXPECT_EQ(Doc.K, JValue::Obj);
  const JValue &Events = Doc.at("traceEvents");
  EXPECT_EQ(Events.K, JValue::Arr);

  // Per-thread begin/end balance, name-matched, ts-ordered.
  std::map<double, std::vector<std::string>> Stacks;
  std::map<double, double> LastTs;
  for (const JValue &E : Events.A) {
    EXPECT_EQ(E.K, JValue::Obj);
    const std::string &Ph = E.at("ph").S;
    const std::string &Name = E.at("name").S;
    double Tid = E.at("tid").N;
    double Ts = E.at("ts").N;
    (void)E.at("pid");
    EXPECT_FALSE(Name.empty());
    EXPECT_GE(Ts, 0.0);
    auto It = LastTs.find(Tid);
    if (It != LastTs.end()) {
      EXPECT_GE(Ts, It->second) << "timestamps regress within tid";
    }
    LastTs[Tid] = Ts;
    if (Ph == "B") {
      Stacks[Tid].push_back(Name);
    } else if (Ph == "E") {
      if (Stacks[Tid].empty()) {
        ADD_FAILURE() << "E without matching B";
      } else {
        EXPECT_EQ(Stacks[Tid].back(), Name) << "mismatched begin/end nesting";
        Stacks[Tid].pop_back();
      }
    } else {
      ADD_FAILURE() << "unexpected phase " << Ph;
    }
  }
  for (auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty()) << "unbalanced spans on tid " << Tid;
  return Events;
}

//===----------------------------------------------------------------------===//
// Trace exporter
//===----------------------------------------------------------------------===//

TEST(Trace, ExportsValidBalancedJson) {
  obs::traceStart(nullptr);
  {
    obs::TraceSpan Outer(obs::SpanKind::CompileTotal);
    {
      obs::TraceSpan Walk(obs::SpanKind::CGFWalk);
    }
    {
      obs::TraceSpan EmitS(obs::SpanKind::Emit);
    }
  }
  std::string Path = tracePath("obs_trace_basic.json");
  ASSERT_TRUE(obs::traceStopTo(Path.c_str()));

  JValue Events = loadAndValidateTrace(Path);
  unsigned Begins = 0, Ends = 0, Compiles = 0;
  for (const JValue &E : Events.A) {
    if (E.at("ph").S == "B") {
      ++Begins;
      if (E.at("name").S == "compile")
        ++Compiles;
    } else {
      ++Ends;
    }
  }
  EXPECT_EQ(Begins, 3u);
  EXPECT_EQ(Ends, 3u);
  EXPECT_EQ(Compiles, 1u);
  std::remove(Path.c_str());
}

TEST(Trace, RealCompilePipelineProducesSpans) {
  obs::traceStart(nullptr);
  Context C;
  VSpec X = C.paramInt(0);
  CompileOptions O;
  O.Backend = BackendKind::ICode;
  CompiledFn F = compileFn(C, C.ret(C.read(X) * C.intConst(3)),
                           EvalType::Int, O);
  EXPECT_EQ(F.as<int(int)>()(5), 15);
  std::string Path = tracePath("obs_trace_compile.json");
  ASSERT_TRUE(obs::traceStopTo(Path.c_str()));

  JValue Events = loadAndValidateTrace(Path);
  std::map<std::string, unsigned> ByName;
  for (const JValue &E : Events.A)
    if (E.at("ph").S == "B")
      ++ByName[E.at("name").S];
  EXPECT_GE(ByName["compile"], 1u);
  EXPECT_GE(ByName["cgf-walk"], 1u);
  EXPECT_GE(ByName["linear-scan"], 1u);
  EXPECT_GE(ByName["emit"], 1u);
  EXPECT_GE(ByName["icache-flush"], 1u);
  std::remove(Path.c_str());
}

TEST(Trace, MultiThreadInterleaving) {
  constexpr unsigned Threads = 4, PerThread = 50;
  obs::traceStart(nullptr);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([] {
      for (unsigned I = 0; I < PerThread; ++I) {
        obs::TraceSpan Outer(obs::SpanKind::CacheProbe);
        obs::TraceSpan Inner(obs::SpanKind::Emit);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  std::string Path = tracePath("obs_trace_mt.json");
  ASSERT_TRUE(obs::traceStopTo(Path.c_str()));

  // loadAndValidateTrace asserts per-tid balance; on top of that, every
  // thread's events must all have made it out.
  JValue Events = loadAndValidateTrace(Path);
  std::map<double, unsigned> BeginsPerTid;
  unsigned Probes = 0, Emits = 0;
  for (const JValue &E : Events.A) {
    if (E.at("ph").S != "B")
      continue;
    ++BeginsPerTid[E.at("tid").N];
    if (E.at("name").S == "cache-probe")
      ++Probes;
    else if (E.at("name").S == "emit")
      ++Emits;
  }
  EXPECT_EQ(Probes, Threads * PerThread);
  EXPECT_EQ(Emits, Threads * PerThread);
  EXPECT_EQ(BeginsPerTid.size(), Threads);
  for (auto &[Tid, N] : BeginsPerTid)
    EXPECT_EQ(N, 2 * PerThread) << "tid " << Tid;
  std::remove(Path.c_str());
}

TEST(Trace, DisabledRecordsNothing) {
  ASSERT_FALSE(obs::traceEnabled());
  {
    obs::TraceSpan S(obs::SpanKind::CompileTotal); // Must not arm.
  }
  obs::traceStart(nullptr);
  std::string Path = tracePath("obs_trace_empty.json");
  ASSERT_TRUE(obs::traceStopTo(Path.c_str()));
  JValue Events = loadAndValidateTrace(Path);
  EXPECT_TRUE(Events.A.empty());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Histogram bucketing
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketEdges) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucketFor(0), 0u);
  EXPECT_EQ(H::bucketFor(1), 1u);
  EXPECT_EQ(H::bucketFor(2), 2u);
  EXPECT_EQ(H::bucketFor(3), 2u);
  EXPECT_EQ(H::bucketFor(4), 3u);
  // The last normal bucket holds [2^45, 2^46).
  EXPECT_EQ(H::bucketFor((1ull << 45)), H::NumBuckets - 2);
  EXPECT_EQ(H::bucketFor((1ull << 46) - 1), H::NumBuckets - 2);
  // At 2^46 and beyond everything collapses into the overflow bucket.
  EXPECT_EQ(H::bucketFor(1ull << 46), H::NumBuckets - 1);
  EXPECT_EQ(H::bucketFor(UINT64_MAX), H::NumBuckets - 1);
  // Bucket lower bounds are consistent with bucketFor.
  EXPECT_EQ(H::bucketLo(0), 0u);
  EXPECT_EQ(H::bucketLo(1), 1u);
  EXPECT_EQ(H::bucketLo(2), 2u);
  EXPECT_EQ(H::bucketLo(H::NumBuckets - 1), 1ull << 46);
  for (unsigned B = 0; B < H::NumBuckets; ++B)
    EXPECT_EQ(H::bucketFor(H::bucketLo(B)), B);
}

TEST(Histogram, RecordAndReset) {
  obs::Histogram H;
  H.record(0);
  H.record(1);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), UINT64_MAX + 1ull); // Wraps mod 2^64 by design.
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), UINT64_MAX);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(obs::Histogram::NumBuckets - 1), 1u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

TEST(Metrics, SnapshotLookupAndEmptyHistogramMin) {
  obs::MetricsRegistry R;
  R.counter("test.counter").inc(7);
  R.histogram("test.empty"); // Registered, never recorded.
  obs::MetricsSnapshot S = R.snapshot();
  EXPECT_EQ(S.counter("test.counter"), 7u);
  EXPECT_EQ(S.counter("never.registered"), 0u);
  ASSERT_NE(S.histogram("test.empty"), nullptr);
  EXPECT_EQ(S.histogram("test.empty")->Min, 0u) << "empty min reads as 0";
  EXPECT_EQ(S.histogram("nope"), nullptr);
}

//===----------------------------------------------------------------------===//
// PhaseTimer re-entrancy
//===----------------------------------------------------------------------===//

TEST(PhaseTimer, NestedStartsChargeOutermostSpanOnce) {
  PhaseTimer T;
  T.start();
  EXPECT_TRUE(T.running());
  std::uint64_t Spin = readCycleCounter();
  while (readCycleCounter() - Spin < 10000)
    ;
  T.start(); // Re-entrant: must not reset StartedAt.
  T.stop();
  EXPECT_TRUE(T.running()) << "inner stop must not end the outer span";
  EXPECT_EQ(T.totalCycles(), 0u) << "nothing charged until the outer stop";
  T.stop();
  EXPECT_FALSE(T.running());
  // The outer span covered the spin wait; a corrupted StartedAt (the old
  // re-entrancy bug) would charge only the tail after the inner start.
  EXPECT_GE(T.totalCycles(), 10000u);
  T.reset();
  EXPECT_EQ(T.totalCycles(), 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline metrics: phase sum vs total, cache mirroring
//===----------------------------------------------------------------------===//

TEST(PipelineMetrics, PhaseSumTracksCompileTotal) {
  obs::MetricsRegistry::global().resetAll();
  for (unsigned Rep = 0; Rep < 40; ++Rep) {
    for (BackendKind BK : {BackendKind::VCode, BackendKind::ICode}) {
      Context C;
      VSpec X = C.paramInt(0);
      Expr E = C.read(X);
      for (int I = 1; I <= 24; ++I)
        E = E * C.intConst(3) + C.read(X) + C.intConst(I);
      CompileOptions O;
      O.Backend = BK;
      CompiledFn F = compileFn(C, C.ret(E), EvalType::Int, O);
      ASSERT_TRUE(F.valid());
    }
  }
  obs::MetricsSnapshot S = obs::MetricsRegistry::global().snapshot();
  std::uint64_t Total = S.counter(obs::names::CompileCyclesTotal);
  std::uint64_t Phases = obs::phaseCycleSum(S);
  ASSERT_GT(Total, 0u);
  // The per-phase scopes live inside the total scope, so their sum can
  // never meaningfully exceed it, and together the instrumented phases
  // must account for the bulk of it (the tickc-report invariant).
  EXPECT_LE(Phases, Total + Total / 10);
  EXPECT_GE(Phases, Total - Total / 2)
      << "phases cover only " << (100.0 * Phases / Total) << "% of total";
}

TEST(PipelineMetrics, CacheCountersMirrorIntoRegistry) {
  obs::MetricsSnapshot Before = obs::MetricsRegistry::global().snapshot();
  apps::PowerApp Power(9);
  cache::CompileService Service;
  cache::FnHandle A = Power.specializeCached(Service);
  cache::FnHandle B = Power.specializeCached(Service);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A.get(), B.get());

  // Per-instance stats stay exact on the instance...
  cache::CacheStats Inst = Service.cache().stats();
  EXPECT_EQ(Inst.Insertions, 1u);
  EXPECT_GE(Inst.Hits, 1u);

  // ...and the cumulative registry mirrors move by at least as much.
  obs::MetricsSnapshot After = obs::MetricsRegistry::global().snapshot();
  EXPECT_GE(After.counter(obs::names::CacheInsertions),
            Before.counter(obs::names::CacheInsertions) + 1);
  EXPECT_GE(After.counter(obs::names::CacheHits),
            Before.counter(obs::names::CacheHits) + 1);
  EXPECT_GE(After.counter(obs::names::CacheMisses),
            Before.counter(obs::names::CacheMisses) + 1);
  EXPECT_GT(After.counter(obs::names::CacheBytesInserted),
            Before.counter(obs::names::CacheBytesInserted));
}

TEST(PipelineMetrics, ReportRendersNonTrivially) {
  Context C;
  VSpec X = C.paramInt(0);
  CompiledFn F =
      compileFn(C, C.ret(C.read(X) + C.intConst(1)), EvalType::Int);
  ASSERT_TRUE(F.valid());
  std::string R = obs::renderReport();
  EXPECT_NE(R.find("compile phases (cycles, all compiles)"),
            std::string::npos);
  EXPECT_NE(R.find("cgf walk"), std::string::npos);
  EXPECT_NE(R.find("phase sum"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Generated-code profiling
//===----------------------------------------------------------------------===//

class ProfileBothBackends : public ::testing::TestWithParam<BackendKind> {};

INSTANTIATE_TEST_SUITE_P(Backends, ProfileBothBackends,
                         ::testing::Values(BackendKind::VCode,
                                           BackendKind::ICode),
                         [](const auto &Info) {
                           return Info.param == BackendKind::VCode ? "VCode"
                                                                   : "ICode";
                         });

TEST_P(ProfileBothBackends, CountsInvocationsUnderEightThreads) {
  Context C;
  VSpec X = C.paramInt(0);
  Expr E = C.read(X) * C.intConst(3) + C.intConst(1);
  CompileOptions O;
  O.Backend = GetParam();
  O.Profile = true;
  O.ProfileName = "stress-fn";
  CompiledFn F = compileFn(C, C.ret(E), EvalType::Int, O);
  ASSERT_TRUE(F.valid());
  ASSERT_NE(F.profile(), nullptr);
  EXPECT_EQ(F.profile()->Name, "stress-fn");
  EXPECT_GT(F.profile()->CompileCycles.load(), 0u);
  EXPECT_GT(F.profile()->CodeBytes.load(), 0u);

  auto *Fn = F.as<int(int)>();
  constexpr unsigned Threads = 8, PerThread = 10000;
  std::atomic<unsigned> Wrong{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&] {
      for (unsigned I = 0; I < PerThread; ++I)
        if (Fn(static_cast<int>(I)) != static_cast<int>(I) * 3 + 1)
          Wrong.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Wrong.load(), 0u);
  EXPECT_EQ(F.profile()->Invocations.load(),
            static_cast<std::uint64_t>(Threads) * PerThread);

  // The registry sees the entry too.
  bool Found = false;
  for (const auto &E2 : obs::ProfileRegistry::global().entries())
    if (E2.get() == F.profile())
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Profiling, UnprofiledFunctionHasNoEntryAndNoCounterBump) {
  Context C;
  VSpec X = C.paramInt(0);
  CompiledFn F =
      compileFn(C, C.ret(C.read(X) + C.intConst(2)), EvalType::Int);
  EXPECT_EQ(F.profile(), nullptr);
  EXPECT_EQ(F.as<int(int)>()(40), 42);
}

TEST(Profiling, ProfileFlagChangesSpecKey) {
  apps::PowerApp Power(7);
  CompileOptions Plain;
  CompileOptions Prof;
  Prof.Profile = true;
  EXPECT_NE(Power.cacheKey(Plain).Hash, Power.cacheKey(Prof).Hash);
  EXPECT_NE(Power.cacheKey(Plain).Bytes, Power.cacheKey(Prof).Bytes);
}

TEST(Profiling, RegistryBoundsExpiredRetirementRecords) {
  // Regression: churning short-lived profiled functions used to grow the
  // registry's slot vector without bound — every create() appended a
  // weak_ptr that nothing ever compacted. The bound must hold without
  // anyone calling entries() in between.
  obs::ProfileRegistry &R = obs::ProfileRegistry::global();
  R.drainExpired();
  std::size_t LiveBefore = R.recordCount();

  for (unsigned I = 0; I < 2000; ++I) {
    Context C;
    VSpec X = C.paramInt(0);
    CompileOptions O;
    O.Profile = true;
    CompiledFn F = compileFn(C, C.ret(C.read(X) + C.intConst(1)),
                             EvalType::Int, O);
    ASSERT_NE(F.profile(), nullptr);
  } // Handle dies each iteration: 2000 expired records created.

  // create()'s high-water compaction keeps records O(live), far below the
  // 2000 expired entries this loop minted.
  EXPECT_LT(R.recordCount(), LiveBefore + 512);

  // An explicit drain releases the remaining expired slots immediately.
  R.drainExpired();
  EXPECT_LE(R.recordCount(), LiveBefore + 1);
}

} // namespace
