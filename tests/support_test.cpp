//===- tests/support_test.cpp - Arena / CodeRegion / Timing tests ---------===//

#include "support/Arena.h"
#include "support/CodeBuffer.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

using namespace tcc;

TEST(Arena, BasicAllocation) {
  Arena A;
  int *P = A.create<int>(42);
  EXPECT_EQ(*P, 42);
  double *Q = A.create<double>(2.5);
  EXPECT_EQ(*Q, 2.5);
  EXPECT_EQ(*P, 42) << "later allocation must not clobber earlier one";
}

TEST(Arena, AlignmentRespected) {
  Arena A;
  for (std::size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
  }
}

TEST(Arena, AllocationsAreDistinct) {
  Arena A;
  std::set<void *> Seen;
  for (int I = 0; I < 1000; ++I) {
    void *P = A.allocate(16);
    EXPECT_TRUE(Seen.insert(P).second) << "duplicate arena pointer";
    std::memset(P, 0xAB, 16);
  }
}

TEST(Arena, GrowsPastSlabSize) {
  Arena A(/*SlabBytes=*/4096);
  // A single allocation larger than a slab must still succeed.
  char *Big = static_cast<char *>(A.allocate(64 * 1024));
  std::memset(Big, 1, 64 * 1024);
  EXPECT_GE(A.slabCount(), 2u);
}

TEST(Arena, FastPathIsPointerBump) {
  Arena A(/*SlabBytes=*/1 << 20);
  std::size_t SlabsBefore = A.slabCount();
  for (int I = 0; I < 1000; ++I)
    A.allocate(64);
  // 1000 * 64 bytes fits in one megabyte slab: no new slab allocations, so
  // each allocation was just a pointer increment (paper §4.2).
  EXPECT_EQ(A.slabCount(), SlabsBefore);
}

TEST(Arena, ResetReclaims) {
  Arena A(/*SlabBytes=*/4096);
  for (int I = 0; I < 100; ++I)
    A.allocate(1024);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.slabCount(), 1u);
  int *P = A.create<int>(7);
  EXPECT_EQ(*P, 7);
}

TEST(CodeRegion, WriteThenExecute) {
  CodeRegion R(4096, CodePlacement::Sequential);
  // mov eax, 0x2A; ret
  const std::uint8_t Code[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  std::memcpy(R.base(), Code, sizeof(Code));
  R.makeExecutable();
  auto Fn = reinterpret_cast<int (*)()>(R.base());
  EXPECT_EQ(Fn(), 42);
}

TEST(CodeRegion, WritableAfterExecutable) {
  CodeRegion R(4096, CodePlacement::Sequential);
  const std::uint8_t Code[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  std::memcpy(R.base(), Code, sizeof(Code));
  R.makeExecutable();
  R.makeWritable();
  R.base()[1] = 0x07; // now returns 7
  R.makeExecutable();
  auto Fn = reinterpret_cast<int (*)()>(R.base());
  EXPECT_EQ(Fn(), 7);
}

TEST(CodeRegion, RandomizedPlacementStaysAligned) {
  for (int I = 0; I < 16; ++I) {
    CodeRegion R(4096, CodePlacement::Randomized);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(R.base()) % 16, 0u);
    R.base()[0] = 0xC3;
    R.makeExecutable();
    reinterpret_cast<void (*)()>(R.base())();
  }
}

TEST(Timing, CycleCounterMonotonic) {
  std::uint64_t A = readCycleCounter();
  std::uint64_t B = readCycleCounter();
  EXPECT_GE(B, A);
}

TEST(Timing, CyclesPerNanoPlausible) {
  double R = cyclesPerNano();
  EXPECT_GT(R, 0.05); // >= 50 MHz
  EXPECT_LT(R, 10.0); // <= 10 GHz
}

TEST(Timing, PhaseTimerAccumulates) {
  PhaseTimer T;
  for (int I = 0; I < 3; ++I) {
    T.start();
    volatile int X = 0;
    for (int J = 0; J < 1000; ++J)
      X = X + J;
    T.stop();
  }
  EXPECT_GT(T.totalCycles(), 0u);
  std::uint64_t First = T.totalCycles();
  T.start();
  T.stop();
  EXPECT_GE(T.totalCycles(), First);
  T.reset();
  EXPECT_EQ(T.totalCycles(), 0u);
}
